"""Tests for the hint-fault scanner (AutoNUMA/TPP machinery)."""

import numpy as np
import pytest

from repro.sampling.events import AccessBatch
from repro.sampling.recency import HintFaultScanner


def batch_of(pages) -> AccessBatch:
    return AccessBatch(page_ids=np.asarray(pages), num_ops=1.0, cpu_ns=0.0)


@pytest.fixture
def scanner() -> HintFaultScanner:
    return HintFaultScanner(total_pages=100, window_pages=10)


class TestScanning:
    def test_windows_advance(self, scanner):
        w1 = scanner.scan_tick(0.0)
        w2 = scanner.scan_tick(1.0)
        assert np.array_equal(w1, np.arange(0, 10))
        assert np.array_equal(w2, np.arange(10, 20))

    def test_wraps_around(self, scanner):
        for __ in range(10):
            scanner.scan_tick(0.0)
        w = scanner.scan_tick(1.0)
        assert np.array_equal(w, np.arange(0, 10))

    def test_partial_wrap_window(self):
        s = HintFaultScanner(total_pages=25, window_pages=10)
        s.scan_tick(0.0)
        s.scan_tick(0.0)
        w = s.scan_tick(0.0)  # pages 20..24 then 0..4
        assert np.array_equal(w, [20, 21, 22, 23, 24, 0, 1, 2, 3, 4])

    def test_window_larger_than_space_clamped(self):
        s = HintFaultScanner(total_pages=5, window_pages=100)
        w = s.scan_tick(0.0)
        assert len(w) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            HintFaultScanner(total_pages=0, window_pages=1)
        with pytest.raises(ValueError):
            HintFaultScanner(total_pages=10, window_pages=0)


class TestFaults:
    def test_fault_on_unmapped_access(self, scanner):
        scanner.scan_tick(100.0)
        faults = scanner.observe(batch_of([3, 50]), now_ns=400.0)
        assert faults.count == 1
        assert faults.page_ids[0] == 3
        assert faults.latencies_ns[0] == pytest.approx(300.0)

    def test_only_first_access_faults(self, scanner):
        """The frequency-information loss of paper Fig. 3."""
        scanner.scan_tick(0.0)
        faults = scanner.observe(batch_of([5, 5, 5, 5]), now_ns=10.0)
        assert faults.count == 1

    def test_no_refault_across_batches(self, scanner):
        scanner.scan_tick(0.0)
        scanner.observe(batch_of([5]), now_ns=10.0)
        faults = scanner.observe(batch_of([5]), now_ns=20.0)
        assert faults.count == 0

    def test_refault_after_rescan(self, scanner):
        scanner.scan_tick(0.0)
        scanner.observe(batch_of([5]), now_ns=10.0)
        for __ in range(10):  # full sweep re-unmaps page 5
            scanner.scan_tick(100.0)
        faults = scanner.observe(batch_of([5]), now_ns=150.0)
        assert faults.count == 1
        assert faults.latencies_ns[0] == pytest.approx(50.0)

    def test_no_faults_without_scan(self, scanner):
        faults = scanner.observe(batch_of([1, 2, 3]), now_ns=5.0)
        assert faults.count == 0

    def test_empty_batch(self, scanner):
        faults = scanner.observe(batch_of([]), now_ns=0.0)
        assert faults.count == 0

    def test_out_of_range_pages_ignored(self, scanner):
        scanner.scan_tick(0.0)
        faults = scanner.observe(batch_of([5, 1_000_000]), now_ns=1.0)
        assert faults.count == 1

    def test_fault_counter(self, scanner):
        scanner.scan_tick(0.0)
        scanner.observe(batch_of([1, 2, 3]), now_ns=1.0)
        assert scanner.faults_taken == 3

    def test_overhead(self, scanner):
        assert scanner.overhead_ns(3) == pytest.approx(3_000.0)
