"""Tests for the PEBS sampler model."""

import numpy as np
import pytest

from repro.sampling.events import AccessBatch
from repro.sampling.pebs import PEBSSampler, SamplingLevel


def make_batch(n: int) -> AccessBatch:
    return AccessBatch(page_ids=np.arange(n), num_ops=1.0, cpu_ns=0.0)


class TestLevels:
    def test_period_ladder_is_decades(self):
        s = PEBSSampler(base_period=64)
        s.set_level(SamplingLevel.HIGH)
        assert s.period == 64
        s.set_level(SamplingLevel.MEDIUM)
        assert s.period == 640
        s.set_level(SamplingLevel.LOW)
        assert s.period == 6400

    def test_off_level(self):
        s = PEBSSampler()
        s.set_level(SamplingLevel.OFF)
        assert s.period is None
        assert s.sampling_probability == 0.0
        s.observe(make_batch(1000), np.zeros(1000))
        assert s.pending_samples == 0

    def test_nominal_hz_labels(self):
        assert SamplingLevel.HIGH.nominal_hz == 100_000
        assert SamplingLevel.MEDIUM.nominal_hz == 10_000
        assert SamplingLevel.LOW.nominal_hz == 1_000
        assert SamplingLevel.OFF.nominal_hz == 0


class TestSampling:
    def test_rate_approximates_period(self):
        s = PEBSSampler(base_period=10, seed=0)
        s.observe(make_batch(100_000), np.zeros(100_000))
        assert s.pending_samples == pytest.approx(10_000, rel=0.1)

    def test_lower_level_samples_less(self):
        high = PEBSSampler(base_period=10, seed=0)
        low = PEBSSampler(base_period=10, seed=0)
        low.set_level(SamplingLevel.LOW)
        batch = make_batch(100_000)
        high.observe(batch, np.zeros(100_000))
        low.observe(batch, np.zeros(100_000))
        assert low.pending_samples < high.pending_samples / 20

    def test_samples_carry_tier_labels(self):
        s = PEBSSampler(base_period=2, seed=1)
        tiers = np.concatenate([np.zeros(500), np.ones(500)])
        s.observe(
            AccessBatch(page_ids=np.arange(1000), num_ops=1.0, cpu_ns=0.0), tiers
        )
        out = s.drain()
        # Sampled tier composition mirrors the stream's.
        assert 0.3 < out.tiers.mean() < 0.7

    def test_sampled_pages_come_from_batch(self):
        s = PEBSSampler(base_period=4, seed=2)
        pages = np.arange(100, 200)
        s.observe(AccessBatch(page_ids=pages, num_ops=1.0, cpu_ns=0.0), np.zeros(100))
        out = s.drain()
        assert np.all((out.page_ids >= 100) & (out.page_ids < 200))

    def test_deterministic_with_seed(self):
        a = PEBSSampler(base_period=8, seed=3)
        b = PEBSSampler(base_period=8, seed=3)
        batch = make_batch(10_000)
        a.observe(batch, np.zeros(10_000))
        b.observe(batch, np.zeros(10_000))
        assert np.array_equal(a.drain().page_ids, b.drain().page_ids)


class TestRingBuffer:
    def test_overflow_drops_and_counts(self):
        s = PEBSSampler(base_period=1, ring_capacity=100, seed=0)
        s.observe(make_batch(500), np.zeros(500))
        assert s.pending_samples == 100
        out = s.drain()
        assert out.num_samples == 100
        assert out.lost == 400
        assert s.total_lost == 400

    def test_drain_resets(self):
        s = PEBSSampler(base_period=1, seed=0)
        s.observe(make_batch(10), np.zeros(10))
        s.drain()
        assert s.pending_samples == 0
        out = s.drain()
        assert out.num_samples == 0
        assert out.lost == 0

    def test_lost_counter_clears_after_drain(self):
        s = PEBSSampler(base_period=1, ring_capacity=5, seed=0)
        s.observe(make_batch(10), np.zeros(10))
        assert s.drain().lost == 5
        s.observe(make_batch(3), np.zeros(3))
        assert s.drain().lost == 0


class TestOverhead:
    def test_overhead_linear_in_samples(self):
        s = PEBSSampler(sample_cost_ns=100.0)
        assert s.overhead_ns(50) == 5_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PEBSSampler(base_period=0)
        with pytest.raises(ValueError):
            PEBSSampler(ring_capacity=0)
