"""Tests for the PEBS sampler model."""

import numpy as np
import pytest

from repro.sampling.events import AccessBatch
from repro.sampling.pebs import PEBSSampler, SamplingLevel


def make_batch(n: int) -> AccessBatch:
    return AccessBatch(page_ids=np.arange(n), num_ops=1.0, cpu_ns=0.0)


class TestLevels:
    def test_period_ladder_is_decades(self):
        s = PEBSSampler(base_period=64)
        s.set_level(SamplingLevel.HIGH)
        assert s.period == 64
        s.set_level(SamplingLevel.MEDIUM)
        assert s.period == 640
        s.set_level(SamplingLevel.LOW)
        assert s.period == 6400

    def test_off_level(self):
        s = PEBSSampler()
        s.set_level(SamplingLevel.OFF)
        assert s.period is None
        assert s.sampling_probability == 0.0
        s.observe(make_batch(1000), np.zeros(1000))
        assert s.pending_samples == 0

    def test_nominal_hz_labels(self):
        assert SamplingLevel.HIGH.nominal_hz == 100_000
        assert SamplingLevel.MEDIUM.nominal_hz == 10_000
        assert SamplingLevel.LOW.nominal_hz == 1_000
        assert SamplingLevel.OFF.nominal_hz == 0


class TestSampling:
    def test_rate_approximates_period(self):
        s = PEBSSampler(base_period=10, seed=0)
        s.observe(make_batch(100_000), np.zeros(100_000))
        assert s.pending_samples == pytest.approx(10_000, rel=0.1)

    def test_lower_level_samples_less(self):
        high = PEBSSampler(base_period=10, seed=0)
        low = PEBSSampler(base_period=10, seed=0)
        low.set_level(SamplingLevel.LOW)
        batch = make_batch(100_000)
        high.observe(batch, np.zeros(100_000))
        low.observe(batch, np.zeros(100_000))
        assert low.pending_samples < high.pending_samples / 20

    def test_samples_carry_tier_labels(self):
        s = PEBSSampler(base_period=2, seed=1)
        tiers = np.concatenate([np.zeros(500), np.ones(500)])
        s.observe(
            AccessBatch(page_ids=np.arange(1000), num_ops=1.0, cpu_ns=0.0), tiers
        )
        out = s.drain()
        # Sampled tier composition mirrors the stream's.
        assert 0.3 < out.tiers.mean() < 0.7

    def test_sampled_pages_come_from_batch(self):
        s = PEBSSampler(base_period=4, seed=2)
        pages = np.arange(100, 200)
        s.observe(AccessBatch(page_ids=pages, num_ops=1.0, cpu_ns=0.0), np.zeros(100))
        out = s.drain()
        assert np.all((out.page_ids >= 100) & (out.page_ids < 200))

    def test_deterministic_with_seed(self):
        a = PEBSSampler(base_period=8, seed=3)
        b = PEBSSampler(base_period=8, seed=3)
        batch = make_batch(10_000)
        a.observe(batch, np.zeros(10_000))
        b.observe(batch, np.zeros(10_000))
        assert np.array_equal(a.drain().page_ids, b.drain().page_ids)


class TestRingBuffer:
    def test_overflow_drops_and_counts(self):
        s = PEBSSampler(base_period=1, ring_capacity=100, seed=0)
        s.observe(make_batch(500), np.zeros(500))
        assert s.pending_samples == 100
        out = s.drain()
        assert out.num_samples == 100
        assert out.lost == 400
        assert s.total_lost == 400

    def test_drain_resets(self):
        s = PEBSSampler(base_period=1, seed=0)
        s.observe(make_batch(10), np.zeros(10))
        s.drain()
        assert s.pending_samples == 0
        out = s.drain()
        assert out.num_samples == 0
        assert out.lost == 0

    def test_lost_counter_clears_after_drain(self):
        s = PEBSSampler(base_period=1, ring_capacity=5, seed=0)
        s.observe(make_batch(10), np.zeros(10))
        assert s.drain().lost == 5
        s.observe(make_batch(3), np.zeros(3))
        assert s.drain().lost == 0


class TestSkipSamplingStatistics:
    """Distributional guarantees of the O(samples) skip sampler.

    Skip sampling is statistically equivalent to Bernoulli thinning --
    per-batch sample counts follow Binomial(n, 1/period) and sampled
    positions are uniform -- while drawing O(samples) RNG values
    instead of one per offered access.
    """

    def _collect_counts(self, sampler, batch, tiers, reps):
        counts = []
        for _ in range(reps):
            before = sampler.total_samples
            sampler.observe(batch, tiers)
            counts.append(sampler.total_samples - before)
            sampler.drain()
        return np.array(counts)

    def test_sample_count_follows_binomial_law(self):
        n, reps = 50_000, 2_000
        s = PEBSSampler(base_period=64, seed=42)
        s.set_level(SamplingLevel.MEDIUM)  # period 640
        batch = make_batch(n)
        counts = self._collect_counts(s, batch, np.zeros(n, dtype=np.int8), reps)
        p = 1.0 / 640
        mean_exp = n * p
        var_exp = n * p * (1 - p)
        # Mean within 5 sigma of the binomial mean (fixed seed: stable).
        assert abs(counts.mean() - mean_exp) < 5 * np.sqrt(var_exp / reps)
        # Variance within 20% of the binomial variance.
        assert 0.8 * var_exp < counts.var() < 1.2 * var_exp

    def test_sampled_positions_uniform_chi_squared(self):
        n, bins = 50_000, 10
        s = PEBSSampler(base_period=64, seed=7)
        s.set_level(SamplingLevel.MEDIUM)
        ids = np.arange(n)
        tiers = np.zeros(n, dtype=np.int8)
        hist = np.zeros(bins)
        for _ in range(400):
            s.observe(AccessBatch(page_ids=ids, num_ops=1.0, cpu_ns=0.0), tiers)
            out = s.drain()
            hist += np.bincount(out.page_ids // (n // bins), minlength=bins)[:bins]
        expected = hist.sum() / bins
        chi2 = float(((hist - expected) ** 2 / expected).sum())
        # 9 degrees of freedom; 99.9th percentile is 27.9.
        assert chi2 < 27.9, f"positions not uniform: chi2={chi2:.1f}"

    def test_rng_work_is_o_samples(self):
        """The point of skip sampling: RNG draws track samples, not accesses."""
        n = 100_000
        batch = make_batch(n)
        tiers = np.zeros(n, dtype=np.int8)
        for level, min_reduction in [
            (SamplingLevel.MEDIUM, 100.0),
            (SamplingLevel.LOW, 1_000.0),
        ]:
            s = PEBSSampler(base_period=64, seed=0)
            s.set_level(level)
            for _ in range(20):
                s.observe(batch, tiers)
                s.drain()
            reduction = s.total_offered / max(s.rng_values_drawn, 1)
            assert reduction > min_reduction, (level, reduction)

    def test_gap_carry_spans_batches(self):
        """Batch boundaries are invisible: tiny batches at LOW level
        still sample at the nominal long-run rate."""
        s = PEBSSampler(base_period=64, seed=5)
        s.set_level(SamplingLevel.LOW)  # period 6400 >> batch size
        batch = make_batch(1_000)
        tiers = np.zeros(1_000, dtype=np.int8)
        for _ in range(3_000):  # 3M accesses -> ~469 samples expected
            s.observe(batch, tiers)
        expected = 3_000_000 / 6400
        assert s.total_samples == pytest.approx(expected, rel=0.25)

    def test_level_change_redraws_gap(self):
        """A level change mid-stream adopts the new rate immediately."""
        s = PEBSSampler(base_period=64, seed=9)
        s.set_level(SamplingLevel.LOW)
        batch = make_batch(10_000)
        tiers = np.zeros(10_000, dtype=np.int8)
        s.observe(batch, tiers)
        s.set_level(SamplingLevel.HIGH)
        before = s.total_samples
        for _ in range(20):
            s.observe(batch, tiers)
        got = s.total_samples - before
        assert got == pytest.approx(200_000 / 64, rel=0.2)

    def test_overflow_accounting_with_skip_period(self):
        """Ring overflow at period > 1 still counts every lost sample."""
        s = PEBSSampler(base_period=4, ring_capacity=50, seed=0)
        s.observe(make_batch(10_000), np.zeros(10_000, dtype=np.int8))
        assert s.pending_samples == 50
        out = s.drain()
        assert out.num_samples == 50
        assert out.lost > 0
        assert out.lost == s.total_lost
        # ~2500 hits at period 4; everything beyond the ring is lost.
        assert out.lost == pytest.approx(2_450, rel=0.1)

    def test_off_then_on_resumes_cleanly(self):
        s = PEBSSampler(base_period=8, seed=1)
        s.set_level(SamplingLevel.OFF)
        s.observe(make_batch(1_000), np.zeros(1_000, dtype=np.int8))
        assert s.pending_samples == 0
        s.set_level(SamplingLevel.HIGH)
        s.observe(make_batch(10_000), np.zeros(10_000, dtype=np.int8))
        assert s.pending_samples == pytest.approx(1_250, rel=0.3)


class TestOverhead:
    def test_overhead_linear_in_samples(self):
        s = PEBSSampler(sample_cost_ns=100.0)
        assert s.overhead_ns(50) == 5_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PEBSSampler(base_period=0)
        with pytest.raises(ValueError):
            PEBSSampler(ring_capacity=0)
