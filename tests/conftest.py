"""Shared fixtures for the test suite."""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.tier import CXL1_CONFIG

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _is_pycache_only(directory: Path) -> bool:
    """True when ``directory`` holds nothing but a __pycache__ dir.

    A package directory whose sources were removed (e.g. by a branch
    switch) can leave behind orphaned ``.pyc`` files that python is
    happy to import -- the tests would then exercise deleted code.
    """
    children = list(directory.iterdir())
    return (
        len(children) == 1
        and children[0].name == "__pycache__"
        and children[0].is_dir()
    )


@pytest.fixture(scope="session", autouse=True)
def _purge_stale_pycache_dirs():
    """Delete package dirs that contain only a stale __pycache__."""
    for root in (_REPO_ROOT / "src" / "repro", _REPO_ROOT / "tests"):
        if not root.is_dir():
            continue
        for cache in root.rglob("__pycache__"):
            parent = cache.parent
            if parent != root and _is_pycache_only(parent):
                shutil.rmtree(parent, ignore_errors=True)
    yield


@pytest.fixture
def small_machine() -> Machine:
    """A machine with 256 local pages and 8192 CXL pages (1:32)."""
    return Machine(
        MachineConfig(local_capacity_pages=256, cxl_capacity_pages=8192)
    )


@pytest.fixture
def tiny_machine() -> Machine:
    """A machine small enough to reason about by hand."""
    return Machine(MachineConfig(local_capacity_pages=8, cxl_capacity_pages=64))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def cxl1_machine_factory():
    """Factory building CXL-1 machines of arbitrary capacities."""

    def build(local: int, cxl: int) -> Machine:
        return Machine(
            MachineConfig(
                local_capacity_pages=local,
                cxl_capacity_pages=cxl,
                memory=CXL1_CONFIG,
            )
        )

    return build
