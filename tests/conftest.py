"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.tier import CXL1_CONFIG


@pytest.fixture
def small_machine() -> Machine:
    """A machine with 256 local pages and 8192 CXL pages (1:32)."""
    return Machine(
        MachineConfig(local_capacity_pages=256, cxl_capacity_pages=8192)
    )


@pytest.fixture
def tiny_machine() -> Machine:
    """A machine small enough to reason about by hand."""
    return Machine(MachineConfig(local_capacity_pages=8, cxl_capacity_pages=64))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def cxl1_machine_factory():
    """Factory building CXL-1 machines of arbitrary capacities."""

    def build(local: int, cxl: int) -> Machine:
        return Machine(
            MachineConfig(
                local_capacity_pages=local,
                cxl_capacity_pages=cxl,
                memory=CXL1_CONFIG,
            )
        )

    return build
