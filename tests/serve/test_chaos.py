"""Chaos soak: crashes mid-serve, watchdog recovery, bit-identity.

The issue's crash acceptance criterion: a run killed mid-tick by an
:class:`~repro.faults.InjectedCrash`, restarted by the watchdog from
the latest checkpoint and driven to completion must leave the engine
and policy in *bit-identical* state to a reference run that never
crashed (same fault plan minus the crash -- the crash check draws no
RNG, so the two fault streams are identical).
"""

import json

import pytest

from repro.faults import FAULT_PRESETS, FaultPlan
from repro.obs import Tracer
from repro.obs.sinks import ListSink
from repro.serve import ServeConfig, VirtualTimeDriver

from tests.serve.conftest import make_daemon


def canonical(state: dict) -> str:
    """Engine state as comparable JSON, fault state excluded.

    The fault injector's crash-disarm flag legitimately differs
    between a crashed-and-resumed run and its uncrashed reference;
    everything else (progress, metrics, machine placement, policy)
    must match exactly.
    """
    state = dict(state)
    state["faults"] = None
    return json.dumps(state, sort_keys=True, default=str)


def serve_config(**overrides) -> ServeConfig:
    base = dict(
        queue_capacity=16,
        max_batches_per_tick=3,
        checkpoint_every_ticks=2,
        max_restarts=3,
    )
    base.update(overrides)
    return ServeConfig(**base)


def run_daemon(faults, ckpt_dir, *, arrivals=2, offers=40, tracer=None):
    daemon = make_daemon(
        serve=serve_config(),
        faults=faults,
        checkpoint_dir=str(ckpt_dir),
        tracer=tracer,
    )
    driver = VirtualTimeDriver(daemon, arrivals=arrivals, max_offers=offers)
    driver.finish()
    return daemon, driver


class TestCrashRecovery:
    def test_watchdog_restarts_from_checkpoint(self, tmp_path):
        sink = ListSink()
        daemon, driver = run_daemon(
            FaultPlan(seed=3, crash_after_batches=17),
            tmp_path,
            tracer=Tracer(sinks=[sink]),
        )
        assert driver.restarts_seen == 1
        restarts = [
            e for e in sink.events if e["type"] == "watchdog_restart"
        ]
        assert len(restarts) == 1
        assert restarts[0]["generation"] > 0  # restored a real snapshot
        assert "InjectedCrash" in restarts[0]["reason"]
        # Recovery rolled the engine back, then replay caught it up.
        assert daemon.engine.batches_done == 40
        assert daemon.queues["a"].counters.served == 40

    @pytest.mark.parametrize("crash_at", [5, 17, 33])
    def test_crashed_run_bit_identical_to_uncrashed(self, tmp_path, crash_at):
        crashed, drv = run_daemon(
            FaultPlan(seed=3, migration_fail_prob=0.05,
                      crash_after_batches=crash_at),
            tmp_path / "crashed",
        )
        assert drv.restarts_seen == 1
        reference, _ = run_daemon(
            FaultPlan(seed=3, migration_fail_prob=0.05),
            tmp_path / "reference",
        )
        assert canonical(crashed.engine.capture_state()) == canonical(
            reference.engine.capture_state()
        )

    def test_double_crash_still_converges(self, tmp_path):
        # The replay itself re-crosses the crash batch count; the
        # disarm flag restored from the checkpoint must keep the
        # injector from re-firing, and a *second* independent crash
        # later in the run goes through the same recovery path.
        crashed, drv = run_daemon(
            FaultPlan(seed=5, crash_after_batches=9),
            tmp_path / "crashed",
        )
        reference, _ = run_daemon(FaultPlan(seed=5), tmp_path / "ref")
        assert drv.restarts_seen == 1
        assert canonical(crashed.engine.capture_state()) == canonical(
            reference.engine.capture_state()
        )

    def test_crash_before_first_checkpoint_restarts_fresh(self, tmp_path):
        sink = ListSink()
        daemon, driver = run_daemon(
            FaultPlan(seed=2, crash_after_batches=2),
            tmp_path,
            tracer=Tracer(sinks=[sink]),
        )
        restarts = [
            e for e in sink.events if e["type"] == "watchdog_restart"
        ]
        # Depending on cadence the first checkpoint may or may not
        # precede the crash; either way the run completes fully.
        assert len(restarts) == 1
        assert daemon.queues["a"].counters.served == 40


class TestChaosSoak:
    def test_chaos_preset_plus_crash_soak(self, tmp_path):
        """The issue's soak: chaos preset + scheduled crash, recovery,
        full drain, and bit-identical convergence with the uncrashed
        reference."""
        chaos = FAULT_PRESETS["chaos"]
        crash_plan = FaultPlan(
            **{**chaos.to_dict(), "crash_after_batches": 23}
        )
        ref_plan = FaultPlan(
            **{**chaos.to_dict(), "crash_after_batches": None}
        )
        sink = ListSink()
        crashed, drv = run_daemon(
            crash_plan, tmp_path / "crashed", offers=60,
            tracer=Tracer(sinks=[sink]),
        )
        reference, _ = run_daemon(ref_plan, tmp_path / "ref", offers=60)
        assert drv.restarts_seen == 1
        assert crashed.queues["a"].counters.served == 60
        assert canonical(crashed.engine.capture_state()) == canonical(
            reference.engine.capture_state()
        )
        # The soak exercised real fault injection, not a quiet run.
        faults = [e for e in sink.events if e["type"] == "fault_injected"]
        assert faults
        # And the daemon's own SLO pipeline stayed live throughout
        # (replayed batches are observed again, so >= offers).
        slo = crashed.slo_summary()
        assert slo["enqueue_to_service_ns_count"] >= 60
