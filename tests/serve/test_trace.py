"""Daemon trace schema validation and the tracetool serve summary."""

import json

from repro.analysis.tracetool import (
    read_events,
    serve_summary,
    summarize_trace,
    validate_trace,
)
from repro.cli import main
from repro.faults import FaultPlan
from repro.obs import EVENT_TYPES, Tracer
from repro.obs.sinks import JsonlTraceSink
from repro.serve import ServeConfig, VirtualTimeDriver

from tests.serve.conftest import make_daemon

SERVE_EVENT_TYPES = {
    "tick_start",
    "deadline_exceeded",
    "degraded",
    "load_shed",
    "watchdog_restart",
    "config_swapped",
    "drain_complete",
}


class TestEventSchema:
    def test_serve_event_types_registered(self):
        assert SERVE_EVENT_TYPES <= set(EVENT_TYPES)
        assert EVENT_TYPES["tick_start"] == {"tick", "mode", "queue_depth"}
        assert EVENT_TYPES["deadline_exceeded"] == {
            "tick", "budget_ns", "spent_ns",
        }
        assert EVENT_TYPES["watchdog_restart"] == {
            "restarts", "reason", "generation",
        }

    def test_daemon_trace_is_schema_valid(self, tmp_path):
        """A busy daemon run -- overload, deadline misses, a crash, a
        config swap, a drain -- must emit only schema-valid events."""
        trace = tmp_path / "serve.jsonl"
        tracer = Tracer(sinks=[JsonlTraceSink(trace)])
        daemon = make_daemon(
            serve=ServeConfig(
                queue_capacity=4,
                max_batches_per_tick=2,
                tick_budget_ns=1.0,
                degrade_after_ticks=1,
                degrade_queue_high=0.5,
                checkpoint_every_ticks=2,
            ),
            tracer=tracer,
            faults=FaultPlan(seed=4, crash_after_batches=9),
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        driver = VirtualTimeDriver(daemon, arrivals=3, max_offers=24)
        driver.run(3)  # let the 1 ns budget blow a few deadlines first
        daemon.swap_config(serve={"tick_budget_ns": 0.0})
        driver.finish()
        tracer.close()

        outcome = validate_trace(trace)
        assert outcome.ok, outcome.errors
        seen = {e["type"] for e in outcome.events}
        assert {
            "tick_start", "load_shed", "deadline_exceeded", "degraded",
            "watchdog_restart", "config_swapped", "drain_complete",
        } <= seen


class TestServeSummary:
    def test_summary_none_without_serve_events(self):
        assert serve_summary([]) is None

    def test_summary_reduces_serving_story(self, tmp_path):
        trace = tmp_path / "serve.jsonl"
        tracer = Tracer(sinks=[JsonlTraceSink(trace)])
        daemon = make_daemon(
            serve=ServeConfig(
                queue_capacity=4,
                max_batches_per_tick=1,
                degrade_after_ticks=1,
                degrade_queue_high=0.5,
            ),
            tracer=tracer,
        )
        VirtualTimeDriver(daemon, arrivals=3, max_offers=18).finish()
        tracer.close()

        summary = summarize_trace(read_events(trace))
        serve = summary["serve"]
        assert serve["ticks"] == daemon.ticks
        assert serve["shed_batches"] == daemon.queues["a"].counters.shed
        assert set(serve["queue_depth"]) >= {"p50", "p99", "p999"}
        assert sum(serve["ticks_by_mode"].values()) == serve["ticks"]
        # finish() drains through driver ticks, so the terminal drain
        # pass itself has nothing left to serve -- but it did run.
        assert serve["drained"] == 0
        assert summary["event_counts"]["drain_complete"] == 1
        assert serve["mode_timeline"]  # at least one degradation


class TestServeCli:
    def test_cli_serve_json_output(self, tmp_path, capsys):
        trace = tmp_path / "cli.jsonl"
        code = main([
            "serve",
            "--workload", "zipf",
            "--policy", "freqtier",
            "--offers", "12",
            "--arrivals", "2",
            "--queue-capacity", "8",
            "--max-batches-per-tick", "2",
            "--trace", str(trace),
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["zipf_served"] == 12
        assert "enqueue_to_service_ns_p999" in payload
        assert payload["mode"] == "full"
        assert validate_trace(trace).ok

    def test_cli_serve_multi_tenant_with_checkpoints(self, tmp_path, capsys):
        code = main([
            "serve",
            "--workload", "zipf,zipf",
            "--policy", "freqtier",
            "--offers", "6",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--checkpoint-every", "2",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["zipf_served"] == 6
        assert payload["zipf-1_served"] == 6
        assert (tmp_path / "ckpt").is_dir()
        assert list((tmp_path / "ckpt").glob("snap-*.json"))
