"""TenantQueue backpressure semantics and accounting."""

import numpy as np
import pytest

from repro.sampling.events import AccessBatch
from repro.serve.queues import TenantQueue, aggregate_depth


def batch(n: int = 4) -> AccessBatch:
    return AccessBatch(
        page_ids=np.arange(n, dtype=np.int64), num_ops=float(n), cpu_ns=10.0
    )


class TestOffer:
    def test_fifo_order(self):
        queue = TenantQueue("t", capacity=4, backpressure="block")
        for i in range(3):
            outcome, shed = queue.offer(batch(), now_ns=float(i))
            assert outcome == "enqueued" and shed == 0
        assert [queue.pop().index for _ in range(3)] == [0, 1, 2]
        assert queue.pop() is None

    def test_block_refuses_when_full(self):
        queue = TenantQueue("t", capacity=2, backpressure="block")
        queue.offer(batch(), 0.0)
        queue.offer(batch(), 0.0)
        outcome, shed = queue.offer(batch(), 0.0)
        assert outcome == "blocked" and shed == 0
        assert len(queue) == 2
        # A blocked offer is not part of the offered stream.
        assert queue.counters.offered == 2
        assert queue.counters.blocked == 1

    def test_shed_oldest_evicts_front(self):
        queue = TenantQueue("t", capacity=2, backpressure="shed-oldest")
        queue.offer(batch(), 0.0)
        queue.offer(batch(), 0.0)
        outcome, shed = queue.offer(batch(), 0.0)
        assert outcome == "enqueued" and shed == 1
        assert queue.counters.shed == 1
        # Oldest (index 0) was evicted; 1 and 2 remain.
        assert [queue.pop().index, queue.pop().index] == [1, 2]

    def test_reject_drops_newest(self):
        queue = TenantQueue("t", capacity=1, backpressure="reject")
        queue.offer(batch(), 0.0)
        outcome, shed = queue.offer(batch(), 0.0)
        assert outcome == "rejected" and shed == 0
        assert queue.counters.rejected == 1
        assert queue.counters.offered == 2  # rejected offers consume stream
        assert len(queue) == 1

    def test_enqueue_timestamp_recorded(self):
        queue = TenantQueue("t", capacity=2, backpressure="block")
        queue.offer(batch(), now_ns=123.5)
        assert queue.pop().enqueued_ns == 123.5

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="capacity"):
            TenantQueue("t", capacity=0, backpressure="block")
        with pytest.raises(ValueError, match="backpressure"):
            TenantQueue("t", capacity=1, backpressure="nope")


class TestStateRoundTrip:
    def test_counters_and_depth_round_trip(self):
        queue = TenantQueue("t", capacity=4, backpressure="shed-oldest")
        for _ in range(6):  # 4 enqueued + 2 shed via eviction
            queue.offer(batch(), 0.0)
        queue.pop()
        queue.counters.served += 1
        state = queue.state_dict()
        assert state["depth"] == 3
        fresh = TenantQueue("t", capacity=4, backpressure="shed-oldest")
        fresh.load_state(state)
        assert fresh.counters.as_dict() == queue.counters.as_dict()
        assert fresh.restored_depth == 3
        assert len(fresh) == 0  # entries are never captured

    def test_disposed_is_stream_prefix_under_shed(self):
        # The crash-replay invariant: served + shed always equals the
        # count of the *oldest* offered batches, in every interleaving.
        queue = TenantQueue("t", capacity=2, backpressure="shed-oldest")
        disposed_indices = []
        for step in range(12):
            queue.offer(batch(), 0.0)
            if step % 3 == 2:
                entry = queue.pop()
                queue.counters.served += 1
                disposed_indices.append(entry.index)
        # Entries still queued are exactly the newest ones.
        remaining = [queue.pop().index for _ in range(len(queue))]
        disposed = queue.counters.served + queue.counters.shed
        assert sorted(remaining) == list(
            range(disposed, queue.counters.offered)
        )


class TestAggregate:
    def test_aggregate_depth(self):
        queues = {
            "a": TenantQueue("a", capacity=2, backpressure="block"),
            "b": TenantQueue("b", capacity=4, backpressure="block"),
        }
        queues["a"].offer(batch(), 0.0)
        queues["b"].offer(batch(), 0.0)
        queues["b"].offer(batch(), 0.0)
        snap = aggregate_depth(queues)
        assert snap.depth == 3
        assert snap.capacity == 6
        assert snap.fill_fraction == 0.5

    def test_clear_reports_dropped(self):
        queue = TenantQueue("t", capacity=4, backpressure="block")
        queue.offer(batch(), 0.0)
        queue.offer(batch(), 0.0)
        assert queue.clear() == 2
        assert len(queue) == 0
