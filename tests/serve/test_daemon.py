"""TieringDaemon behaviour: ticks, overload, deadlines, swaps, drain."""

import asyncio

import pytest

from repro.faults import FaultPlan
from repro.obs import Tracer
from repro.obs.sinks import ListSink
from repro.serve import (
    ServeConfig,
    TieringDaemon,
    VirtualTimeDriver,
    WatchdogGaveUp,
)

from tests.serve.conftest import make_daemon, zipf_factory


def traced():
    sink = ListSink()
    return sink, Tracer(sinks=[sink])


class TestTick:
    def test_tick_services_round_robin(self):
        daemon = make_daemon(
            serve=ServeConfig(max_batches_per_tick=4),
            tenants={"a": zipf_factory(seed=1), "b": zipf_factory(seed=2)},
        )
        driver = VirtualTimeDriver(daemon, arrivals=2, max_offers=2)
        driver.offer_round()
        report = daemon.tick()
        assert report.served == 4
        assert daemon.queues["a"].counters.served == 2
        assert daemon.queues["b"].counters.served == 2
        assert report.mode == "full"
        assert daemon.engine.batches_done == 4

    def test_tick_is_bounded(self):
        daemon = make_daemon(serve=ServeConfig(max_batches_per_tick=2))
        driver = VirtualTimeDriver(daemon, arrivals=6, max_offers=6)
        driver.offer_round()
        report = daemon.tick()
        assert report.served == 2
        assert report.queue_depth_end == 4

    def test_empty_tick_is_fine(self, daemon):
        report = daemon.tick()
        assert report.served == 0
        assert daemon.ticks == 1

    def test_virtual_latency_recorded(self, daemon):
        driver = VirtualTimeDriver(daemon, arrivals=2, max_offers=2)
        driver.offer_round()
        daemon.tick()
        summary = daemon.slo.summary("enqueue_to_service_ns")
        assert summary["count"] == 2
        assert summary["min"] > 0  # service completion is after enqueue


class TestOverloadAcceptance:
    """The issue's overload criterion: queue depth and p999 stay
    bounded, work is shed, the daemon degrades, and once the burst
    passes it re-promotes to full via hysteresis."""

    def test_shed_degrade_then_repromote(self):
        sink, tracer = traced()
        serve = ServeConfig(
            queue_capacity=8,
            max_batches_per_tick=2,
            degrade_after_ticks=2,
            promote_after_ticks=3,
            degrade_queue_high=0.5,
            promote_queue_low=0.125,
        )
        daemon = make_daemon(serve=serve, tracer=tracer)
        driver = VirtualTimeDriver(
            daemon,
            arrivals=lambda r, t: 4 if r < 12 else 0,  # burst, then calm
            max_offers=48,
        )
        driver.run(40)

        modes = [r.mode for r in driver.reports]
        assert "monitor_only" in modes  # degraded all the way down
        assert modes[-1] == "full"  # ...and recovered
        assert daemon.degradations >= 1 and daemon.promotions >= 1
        # Queue depth stays bounded by the configured capacity.
        depths = [r.queue_depth_end for r in driver.reports]
        assert max(depths) <= serve.queue_capacity
        assert daemon.slo.summary("queue_depth")["p999"] <= serve.queue_capacity
        # Latency p999 is bounded: no entry can wait longer than the
        # virtual span of the run.
        latency = daemon.slo.summary("enqueue_to_service_ns")
        assert latency["p999"] <= daemon.engine.now_ns
        # Overflow was shed, and the trace says so.
        assert daemon.queues["a"].counters.shed > 0
        shed_events = [e for e in sink.events if e["type"] == "load_shed"]
        assert sum(e["count"] for e in shed_events) == (
            daemon.queues["a"].counters.shed
        )
        reasons = {e["reason"] for e in sink.events if e["type"] == "degraded"}
        assert reasons == {"overload", "recovered"}

    def test_migrations_gated_below_full(self):
        serve = ServeConfig(
            queue_capacity=4,
            max_batches_per_tick=1,
            degrade_after_ticks=1,
            degrade_queue_high=0.5,
        )
        daemon = make_daemon(serve=serve)
        driver = VirtualTimeDriver(daemon, arrivals=3, max_offers=30)
        driver.run(12)
        assert daemon.mode != "full"
        assert daemon.engine.machine.migrations_deferred >= 0
        assert daemon.migration_stall_ns > 0


class TestDeadlineBudget:
    def test_budget_cuts_policy_work_mid_tick(self):
        sink, tracer = traced()
        # A budget of 1 simulated ns: the first policy invocation
        # exhausts it, so later batches in the tick run policy-free.
        serve = ServeConfig(tick_budget_ns=1.0, max_batches_per_tick=4)
        daemon = make_daemon(serve=serve, tracer=tracer)
        driver = VirtualTimeDriver(daemon, arrivals=4, max_offers=4)
        driver.offer_round()
        report = daemon.tick()
        assert report.budget_exceeded
        assert daemon.deadline_ticks == 1
        events = [e for e in sink.events if e["type"] == "deadline_exceeded"]
        assert len(events) == 1  # fires once per tick, not per batch
        assert events[0]["spent_ns"] > events[0]["budget_ns"]
        batches = [e for e in sink.events if e["type"] == "batch"]
        assert len(batches) == 4
        # Policy ran for the first batch only.
        assert batches[0]["overhead_ns"] > 0
        assert all(b["overhead_ns"] == 0 for b in batches[1:])


class TestHotSwap:
    def test_serve_swap_applies_at_tick_boundary(self):
        sink, tracer = traced()
        daemon = make_daemon(
            serve=ServeConfig(queue_capacity=8), tracer=tracer
        )
        daemon.swap_config(serve={"queue_capacity": 3, "tick_budget_ns": 5.0})
        assert daemon.serve.queue_capacity == 8  # not yet
        daemon.tick()
        assert daemon.serve.queue_capacity == 3
        assert daemon.queues["a"].capacity == 3
        events = [e for e in sink.events if e["type"] == "config_swapped"]
        assert len(events) == 1
        assert events[0]["changed"] == [
            "serve.queue_capacity", "serve.tick_budget_ns",
        ]

    def test_policy_swap_via_reconfigure(self):
        daemon = make_daemon()
        old = daemon.engine.policy.config.initial_hot_threshold
        daemon.swap_config(policy={"initial_hot_threshold": old + 3})
        daemon.tick()
        assert daemon.engine.policy.config.initial_hot_threshold == old + 3
        assert daemon.config_swaps == 1

    def test_unknown_policy_field_rejected(self):
        daemon = make_daemon()
        daemon.swap_config(policy={"not_a_real_knob": 1})
        with pytest.raises(ValueError, match="not_a_real_knob"):
            daemon.tick()

    def test_invalid_serve_swap_rejected(self):
        daemon = make_daemon()
        daemon.swap_config(serve={"queue_capacity": 0})
        with pytest.raises(ValueError, match="queue_capacity"):
            daemon.tick()


class TestDrainAndFinalize:
    def test_drain_services_backlog_and_emits_event(self):
        sink, tracer = traced()
        daemon = make_daemon(
            serve=ServeConfig(max_batches_per_tick=2), tracer=tracer
        )
        driver = VirtualTimeDriver(daemon, arrivals=5, max_offers=5)
        driver.offer_round()
        served = daemon.drain()
        assert served == 5
        events = [e for e in sink.events if e["type"] == "drain_complete"]
        assert len(events) == 1
        assert events[0]["served"] == 5 and events[0]["remaining"] == 0

    def test_finalize_none_when_nothing_served(self, daemon):
        assert daemon.finalize() is None

    def test_finalize_reduces_served_batches(self, daemon):
        driver = VirtualTimeDriver(daemon, arrivals=3, max_offers=6)
        result = driver.finish()
        assert result is not None
        assert result.policy_name == "FreqTier"
        assert result.workload_name.startswith("serve[")

    def test_slo_summary_has_quantiles_and_counters(self, daemon):
        VirtualTimeDriver(daemon, arrivals=2, max_offers=6).finish()
        slo = daemon.slo_summary()
        for key in (
            "enqueue_to_service_ns_p50",
            "enqueue_to_service_ns_p99",
            "enqueue_to_service_ns_p999",
            "a_served",
            "a_shed",
            "migration_stall_ns",
            "restarts",
            "deadline_ticks",
        ):
            assert key in slo
        assert slo["a_served"] == 6


class TestWatchdogGiveUp:
    def test_gives_up_past_restart_budget(self, tmp_path):
        daemon = make_daemon(
            serve=ServeConfig(max_batches_per_tick=2, max_restarts=0),
            faults=FaultPlan(seed=1, crash_after_batches=3),
            checkpoint_dir=str(tmp_path),
        )
        driver = VirtualTimeDriver(daemon, arrivals=2, max_offers=12)
        with pytest.raises(WatchdogGaveUp, match="InjectedCrash"):
            driver.run(12)


class TestAsyncioFrontend:
    def test_serve_forever_drains_on_stop(self):
        daemon = make_daemon(serve=ServeConfig(max_batches_per_tick=2))

        async def scenario():
            task = asyncio.ensure_future(
                daemon.serve_forever(
                    poll_s=0.001, install_signal_handlers=False
                )
            )
            workload = daemon.tenants["a"]
            stream = workload.batches()
            for _ in range(5):
                outcome = await daemon.submit_async("a", next(stream))
                assert outcome == "enqueued"
            await asyncio.sleep(0.05)
            daemon.request_stop()
            return await task

        served = asyncio.run(scenario())
        assert served == 5
        assert daemon.queues["a"].counters.served == 5

    def test_submit_async_blocks_until_space(self):
        daemon = make_daemon(
            serve=ServeConfig(
                queue_capacity=1, backpressure="block", max_batches_per_tick=1
            )
        )

        async def scenario():
            workload = daemon.tenants["a"]
            stream = workload.batches()
            task = asyncio.ensure_future(
                daemon.serve_forever(
                    poll_s=0.001, install_signal_handlers=False
                )
            )
            for _ in range(3):  # each submit must wait for the loop
                outcome = await daemon.submit_async("a", next(stream))
                assert outcome == "enqueued"
            daemon.request_stop()
            return await task

        served = asyncio.run(scenario())
        assert served == 3
        assert daemon.queues["a"].counters.blocked >= 0
