"""ServeConfig validation and round-trip."""

import pytest

from repro.serve import BACKPRESSURE_MODES, DEGRADATION_MODES, ServeConfig


class TestServeConfig:
    def test_defaults_valid(self):
        config = ServeConfig()
        assert config.backpressure in BACKPRESSURE_MODES
        assert DEGRADATION_MODES[0] == "full"
        assert DEGRADATION_MODES[-1] == "monitor_only"

    def test_round_trip(self):
        config = ServeConfig(
            queue_capacity=7, backpressure="block", tick_budget_ns=123.0
        )
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ServeConfig"):
            ServeConfig.from_dict({"queue_capacity": 4, "bogus": 1})

    def test_replace_validates(self):
        config = ServeConfig()
        assert config.replace(queue_capacity=3).queue_capacity == 3
        with pytest.raises(ValueError, match="queue_capacity"):
            config.replace(queue_capacity=0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("queue_capacity", 0),
            ("backpressure", "drop-all"),
            ("tick_budget_ns", -1.0),
            ("max_batches_per_tick", 0),
            ("degrade_after_ticks", 0),
            ("promote_after_ticks", 0),
            ("sample_only_stride", 0),
            ("max_restarts", -1),
            ("watchdog_stall_s", -0.5),
            ("checkpoint_every_ticks", -1),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            ServeConfig(**{field: value})

    def test_watermarks_must_be_ordered(self):
        with pytest.raises(ValueError, match="promote_queue_low"):
            ServeConfig(degrade_queue_high=0.2, promote_queue_low=0.8)
