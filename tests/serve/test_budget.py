"""TickBudget deadlines and DegradationLadder hysteresis."""

from repro.serve import ServeConfig
from repro.serve.budget import DegradationLadder, TickBudget


class TestTickBudget:
    def test_disabled_budget_never_exceeds(self):
        budget = TickBudget(0.0)
        budget.charge(1e12)
        assert not budget.enabled
        assert not budget.exceeded

    def test_exceeds_only_past_budget(self):
        budget = TickBudget(100.0)
        budget.charge(100.0)
        assert not budget.exceeded
        budget.charge(0.1)
        assert budget.exceeded

    def test_reset_clears_and_can_retarget(self):
        budget = TickBudget(10.0)
        budget.charge(50.0)
        budget.reset(20.0)
        assert budget.spent_ns == 0.0
        assert budget.budget_ns == 20.0


def ladder(degrade_after=2, promote_after=3) -> DegradationLadder:
    return DegradationLadder(
        ServeConfig(
            degrade_queue_high=0.75,
            promote_queue_low=0.25,
            degrade_after_ticks=degrade_after,
            promote_after_ticks=promote_after,
        )
    )


class TestDegradationLadder:
    def test_starts_full(self):
        lad = ladder()
        assert lad.mode == "full"
        assert lad.migrations_enabled

    def test_degrades_after_streak(self):
        lad = ladder(degrade_after=2)
        assert lad.observe_tick(0.9, False) is None
        assert lad.observe_tick(0.9, False) == ("full", "defer_migrations")
        assert not lad.migrations_enabled

    def test_single_overloaded_tick_is_not_enough(self):
        lad = ladder(degrade_after=2)
        lad.observe_tick(0.9, False)
        lad.observe_tick(0.5, False)  # middle ground resets the streak
        assert lad.observe_tick(0.9, False) is None
        assert lad.mode == "full"

    def test_budget_exceeded_counts_as_overload(self):
        lad = ladder(degrade_after=1)
        assert lad.observe_tick(0.0, True) == ("full", "defer_migrations")

    def test_bottom_rung_is_sticky(self):
        lad = ladder(degrade_after=1)
        for _ in range(10):
            lad.observe_tick(1.0, False)
        assert lad.mode == "monitor_only"

    def test_promotes_one_rung_per_calm_streak(self):
        lad = ladder(degrade_after=1, promote_after=2)
        lad.observe_tick(1.0, False)
        lad.observe_tick(1.0, False)
        assert lad.mode == "sample_only"
        assert lad.observe_tick(0.1, False) is None
        assert lad.observe_tick(0.1, False) == (
            "sample_only", "defer_migrations",
        )
        lad.observe_tick(0.1, False)
        assert lad.observe_tick(0.1, False) == ("defer_migrations", "full")
        # Fully promoted: further calm ticks are a no-op.
        lad.observe_tick(0.1, False)
        assert lad.observe_tick(0.1, False) is None

    def test_invoke_policy_per_mode(self):
        lad = ladder()
        assert lad.invoke_policy(0) and lad.invoke_policy(3)
        lad.mode = "defer_migrations"
        assert lad.invoke_policy(1)
        lad.mode = "sample_only"  # stride defaults to 4
        assert lad.invoke_policy(0)
        assert not lad.invoke_policy(1)
        assert lad.invoke_policy(4)
        lad.mode = "monitor_only"
        assert not lad.invoke_policy(0)

    def test_state_round_trip(self):
        lad = ladder(degrade_after=3)
        lad.observe_tick(0.9, False)
        lad.observe_tick(0.9, False)
        state = lad.state_dict()
        fresh = ladder(degrade_after=3)
        fresh.load_state(state)
        assert fresh.mode == lad.mode
        assert fresh.overloaded_streak == 2
        # The restored streak continues where it left off.
        assert fresh.observe_tick(0.9, False) == ("full", "defer_migrations")
