"""Shared builders for the serving-daemon tests.

Everything here is sized for speed: tiny Zipf tenants (1-2k pages,
1k accesses per batch) so a whole daemon lifecycle -- overload,
degradation, crash, recovery, drain -- runs in well under a second.
"""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig
from repro.policies.freqtier import FreqTier
from repro.serve import ServeConfig, TieringDaemon
from repro.workloads.trace import SyntheticZipfWorkload


def zipf_factory(seed: int = 1, pages: int = 2000, accesses: int = 1000):
    return lambda: SyntheticZipfWorkload(
        pages, accesses_per_batch=accesses, seed=seed
    )


def make_daemon(
    serve: ServeConfig | None = None,
    tenants: dict | None = None,
    tracer=None,
    faults=None,
    checkpoint_dir=None,
    policy_factory=None,
) -> TieringDaemon:
    return TieringDaemon(
        workload_factories=tenants or {"a": zipf_factory(seed=1)},
        policy_factory=policy_factory or (lambda: FreqTier()),
        config=ExperimentConfig(local_fraction=0.3),
        serve=serve,
        tracer=tracer,
        faults=faults,
        checkpoint_dir=checkpoint_dir,
    )


@pytest.fixture
def daemon() -> TieringDaemon:
    return make_daemon()
