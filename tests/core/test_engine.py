"""Tests for the simulation engine."""


from repro.core.engine import SimulationEngine
from repro.memsim.machine import Machine, MachineConfig
from repro.policies.static_policy import StaticNoMigration
from repro.policies.freqtier import FreqTier, FreqTierConfig
from repro.workloads.trace import SyntheticZipfWorkload


def build(num_pages=1000, local=100, policy=None):
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=num_pages * 2)
    )
    workload = SyntheticZipfWorkload(
        num_pages=num_pages, accesses_per_batch=1_000, seed=1
    )
    return SimulationEngine(machine, workload, policy or StaticNoMigration())


class TestRun:
    def test_respects_max_batches(self):
        engine = build()
        result = engine.run(max_batches=7)
        assert result.total_accesses == 7_000

    def test_respects_max_accesses(self):
        engine = build()
        result = engine.run(max_accesses=2_500)
        # Stops at the first batch boundary past the limit.
        assert result.total_accesses == 3_000

    def test_time_advances_monotonically(self):
        engine = build()
        engine.run(max_batches=5)
        assert engine.now_ns > 0.0
        times = [t for t, __ in engine.metrics.records and []] or [
            r.start_ns for r in engine.metrics.records
        ]
        assert times == sorted(times)

    def test_traffic_recorded(self):
        engine = build()
        result = engine.run(max_batches=3)
        assert engine.machine.traffic.total_accesses == 3_000
        assert 0.0 < result.overall_hit_ratio < 1.0

    def test_setup_idempotent(self):
        engine = build()
        engine.setup()
        engine.setup()  # second call is a no-op
        assert engine.machine.address_space.total_pages == 1000

    def test_policy_attached_before_workload(self):
        """HeMem-style reservations must precede allocation."""
        from repro.policies.hemem import HeMem

        engine = build(policy=HeMem())
        engine.setup()
        assert engine.machine.reserved_local_pages > 0
        # Application pages spilled accordingly.
        assert (
            engine.machine.local_used_pages
            + engine.machine.reserved_local_pages
            <= engine.machine.config.local_capacity_pages
        )

    def test_migrations_attributed_to_batches(self):
        config = FreqTierConfig(
            sample_batch_size=200, pebs_base_period=2, window_accesses=50_000
        )
        engine = build(policy=FreqTier(config=config, seed=2))
        engine.run(max_batches=40)
        migrated = sum(r.pages_migrated for r in engine.metrics.records)
        assert migrated == engine.machine.traffic.pages_migrated
        assert migrated > 0

    def test_result_policy_stats_propagated(self):
        engine = build()
        result = engine.run(max_batches=2)
        assert "promotions" in result.policy_stats
