"""Tests for metrics reduction."""

import pytest

from repro.core.metrics import BatchRecord, ExperimentResult, MetricsCollector
from repro.memsim.costmodel import BatchCost


def cost(total: float, overhead: float = 0.0) -> BatchCost:
    return BatchCost(
        cpu_ns=total - overhead,
        local_mem_ns=0.0,
        cxl_mem_ns=0.0,
        migration_ns=0.0,
        overhead_ns=overhead,
    )


def collect(batches) -> ExperimentResult:
    """batches: list of (ops, local, cxl, duration, label)."""
    mc = MetricsCollector()
    now = 0.0
    for ops, local, cxl, duration, label in batches:
        mc.record_batch(
            start_ns=now,
            cost=cost(duration),
            num_ops=ops,
            local_accesses=local,
            cxl_accesses=cxl,
            pages_migrated=0,
            label=label,
        )
        now += duration
    return mc.finalize(
        policy_name="p",
        workload_name="w",
        traffic_breakdown={"local": 0.5, "cxl": 0.4, "migration": 0.1},
        migration_bytes=0,
        warmup_fraction=0.25,
    )


class TestBatchRecord:
    def test_derived_fields(self):
        r = BatchRecord(
            start_ns=10.0,
            duration_ns=5.0,
            num_ops=2.0,
            num_accesses=10,
            local_accesses=8,
            cxl_accesses=2,
            pages_migrated=0,
            overhead_ns=0.0,
        )
        assert r.end_ns == 15.0
        assert r.per_op_latency_ns == 2.5
        assert r.hit_ratio == 0.8

    def test_zero_ops_latency_none(self):
        r = BatchRecord(0, 1.0, 0.0, 0, 0, 0, 0, 0.0)
        assert r.per_op_latency_ns is None
        assert r.hit_ratio is None


class TestReduction:
    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            ExperimentResult.from_records(
                [], "p", "w", {}, 0
            )

    def test_hit_ratios(self):
        res = collect(
            [
                (10, 50, 50, 100.0, ""),  # warmup (first 25% of time)
                (10, 90, 10, 100.0, ""),
                (10, 90, 10, 100.0, ""),
                (10, 90, 10, 100.0, ""),
            ]
        )
        assert res.overall_hit_ratio == pytest.approx(320 / 400)
        assert res.steady_hit_ratio == pytest.approx(0.9)

    def test_throughput(self):
        res = collect([(100, 1, 0, 1e9, "")] * 4)  # 100 ops per second
        assert res.steady_throughput_ops_per_s == pytest.approx(100.0)

    def test_p50_is_median(self):
        res = collect(
            [
                (10, 1, 0, 100.0, ""),
                (10, 1, 0, 100.0, ""),
                (10, 1, 0, 100.0, ""),
                (10, 1, 0, 1000.0, ""),
            ]
        )
        # Steady batches have per-op latencies 10, 10, 100 -> median 10.
        assert res.steady_p50_latency_ns == pytest.approx(10.0)

    def test_per_label_times(self):
        res = collect(
            [
                (1, 1, 0, 10.0, "trial0"),
                (1, 1, 0, 20.0, "trial0"),
                (1, 1, 0, 40.0, "trial1"),
            ]
        )
        assert res.time_per_label_ns == {"trial0": 30.0, "trial1": 40.0}

    def test_mean_time_per_label_skips_warmup_labels(self):
        res = collect(
            [
                (1, 1, 0, 100.0, "t0"),
                (1, 1, 0, 10.0, "t1"),
                (1, 1, 0, 10.0, "t2"),
                (1, 1, 0, 10.0, "t3"),
            ]
        )
        # Skips the first 25% of labels (t0, the slow warmup).
        assert res.mean_time_per_label_ns() == pytest.approx(10.0)

    def test_timeline_points(self):
        res = collect([(10, 9, 1, 100.0, "")] * 3)
        assert len(res.hit_ratio_timeline) == 3
        assert res.hit_ratio_timeline[0][1] == pytest.approx(0.9)


class TestRelativeTo:
    def test_all_local_ratios(self):
        fast = collect([(10, 1, 0, 100.0, "t0")] * 4)
        slow = collect([(10, 1, 0, 200.0, "t0")] * 4)
        rel = slow.relative_to(fast)
        assert rel["throughput"] == pytest.approx(0.5)
        assert rel["p50_latency"] == pytest.approx(0.5)

    def test_label_time_relative(self):
        fast = collect([(1, 1, 0, 10.0, f"t{i}") for i in range(4)])
        slow = collect([(1, 1, 0, 30.0, f"t{i}") for i in range(4)])
        assert slow.relative_to(fast)["label_time"] == pytest.approx(1 / 3)

    def test_summary_keys(self):
        res = collect([(10, 9, 1, 100.0, "")] * 2)
        s = res.summary()
        assert {"policy", "workload", "p50_latency_us", "throughput_mops"} <= set(s)
