"""Parallel executor: spec round-trips, jobs semantics, determinism."""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import ExperimentConfig
from repro.core.parallel import (
    CellSpec,
    ParallelExecutor,
    PolicySpec,
    WorkloadSpec,
    executor_from_env,
    resolve_jobs,
    run_cells,
)
from repro.core.runner import compare_policies, run_experiment
from repro.core.sweep import sweep

WORKLOAD = WorkloadSpec("zipf", num_pages=512, alpha=1.1, seed=3)
POLICIES = {
    "FreqTier": PolicySpec("freqtier", seed=3),
    "TPP": PolicySpec("tpp", seed=3),
}
CONFIG = ExperimentConfig(local_fraction=0.1, max_batches=8, seed=3)


def test_workload_spec_builds_fresh_instances():
    a, b = WORKLOAD(), WORKLOAD()
    assert a is not b
    assert a.footprint_pages == b.footprint_pages


def test_policy_spec_builds_policy():
    policy = PolicySpec("freqtier", seed=7)()
    assert policy.name == "FreqTier"
    assert policy.seed == 7


def test_unknown_spec_name_raises_with_choices():
    with pytest.raises(KeyError, match="registered:"):
        WorkloadSpec("no-such-workload")()
    with pytest.raises(KeyError, match="registered:"):
        PolicySpec("no-such-policy")()


def test_specs_pickle_by_value():
    spec = CellSpec(WORKLOAD, POLICIES["FreqTier"], CONFIG, label="x")
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.workload == WORKLOAD
    assert clone.policy == POLICIES["FreqTier"]
    assert clone.label == "x"
    assert clone.fingerprint() == spec.fingerprint()


def test_with_params_overrides_without_mutating():
    base = PolicySpec("freqtier", seed=1)
    varied = base.with_params(seed=2)
    assert base.params == {"seed": 1}
    assert varied.params == {"seed": 2}


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(5) == 5
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-1)


def test_parallel_matches_serial_bit_identical():
    """The acceptance-criterion test: jobs=4 == jobs=1, field for field."""
    serial = compare_policies(
        WORKLOAD, POLICIES, CONFIG, executor=ParallelExecutor(jobs=1)
    )
    parallel = compare_policies(
        WORKLOAD, POLICIES, CONFIG, executor=ParallelExecutor(jobs=4)
    )
    assert set(serial) == set(parallel) == {"AllLocal", "FreqTier", "TPP"}
    for name in serial:
        assert serial[name].to_dict() == parallel[name].to_dict(), name


def test_executor_path_matches_legacy_serial_path():
    legacy = compare_policies(WORKLOAD, POLICIES, CONFIG)
    routed = compare_policies(
        WORKLOAD, POLICIES, CONFIG, executor=ParallelExecutor(jobs=1)
    )
    for name in legacy:
        assert legacy[name].to_dict() == routed[name].to_dict(), name


def test_run_cells_positional_alignment():
    specs = [
        CellSpec(WORKLOAD, POLICIES["TPP"], CONFIG),
        CellSpec(WORKLOAD, None, CONFIG),
        CellSpec(WORKLOAD, POLICIES["FreqTier"], CONFIG),
    ]
    results = run_cells(specs, jobs=2)
    assert [r.policy_name for r in results] == ["TPP", "AllLocal", "FreqTier"]


def test_sweep_through_executor_matches_serial():
    values = [1, 3]
    factory_for = lambda v: PolicySpec("freqtier", seed=3, initial_hot_threshold=v)
    serial = sweep(WORKLOAD, factory_for, values, CONFIG)
    parallel = sweep(
        WORKLOAD, factory_for, values, CONFIG, executor=ParallelExecutor(jobs=2)
    )
    assert list(parallel) == values
    for v in values:
        assert serial[v].to_dict() == parallel[v].to_dict()


def test_jobs_one_accepts_closures():
    result = run_experiment(
        WORKLOAD, POLICIES["TPP"], CONFIG, executor=ParallelExecutor(jobs=1)
    )
    closure = compare_policies(
        lambda: WORKLOAD(),
        {"TPP": lambda: POLICIES["TPP"]()},
        CONFIG,
        include_all_local=False,
        executor=ParallelExecutor(jobs=1),
    )
    assert closure["TPP"].to_dict() == result.to_dict()


def test_unpicklable_factories_rejected_with_guidance():
    captured = []  # make the lambda a true closure (unpicklable)
    specs = [
        CellSpec(lambda: captured or WORKLOAD(), POLICIES["TPP"], CONFIG),
        CellSpec(WORKLOAD, POLICIES["FreqTier"], CONFIG),
    ]
    with pytest.raises(ValueError, match="WorkloadSpec/PolicySpec"):
        ParallelExecutor(jobs=2).run(specs)


def test_executor_from_env_reads_variables(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_JOBS", "3")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    ex = executor_from_env()
    assert ex.jobs == 3
    assert ex.cache is not None
    monkeypatch.delenv("REPRO_JOBS")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    ex_default = executor_from_env()
    assert ex_default.jobs == 1
    assert ex_default.cache is None


def test_closure_cells_have_no_fingerprint():
    assert CellSpec(lambda: None, None, CONFIG).fingerprint() is None
    assert (
        CellSpec(WORKLOAD, lambda: None, CONFIG).fingerprint() is None
    )
    assert CellSpec(WORKLOAD, None, CONFIG).fingerprint() is not None


class TestPerCellTraces:
    def test_each_cell_writes_its_own_trace(self, tmp_path):
        specs = [
            CellSpec(
                WORKLOAD,
                POLICIES["FreqTier"],
                CONFIG,
                label="ft",
                trace_path=str(tmp_path / "ft.jsonl"),
            ),
            CellSpec(
                WORKLOAD,
                POLICIES["TPP"],
                CONFIG,
                label="tpp",
                trace_path=str(tmp_path / "tpp.jsonl"),
            ),
        ]
        ParallelExecutor(jobs=2).run(specs)
        from repro.analysis.tracetool import validate_trace

        for name in ("ft.jsonl", "tpp.jsonl"):
            validation = validate_trace(tmp_path / name)
            assert validation.ok
            assert any(e["type"] == "batch" for e in validation.events)

    def test_trace_path_excluded_from_fingerprint(self, tmp_path):
        plain = CellSpec(WORKLOAD, POLICIES["FreqTier"], CONFIG)
        traced = CellSpec(
            WORKLOAD,
            POLICIES["FreqTier"],
            CONFIG,
            trace_path=str(tmp_path / "t.jsonl"),
        )
        assert plain.fingerprint() == traced.fingerprint()

    def test_cache_hit_leaves_cache_hit_event(self, tmp_path):
        from repro.analysis.tracetool import read_events

        executor = ParallelExecutor(jobs=1, cache=tmp_path / "cache")
        cold = CellSpec(
            WORKLOAD,
            POLICIES["TPP"],
            CONFIG,
            label="tpp",
            trace_path=str(tmp_path / "cold.jsonl"),
        )
        warm = CellSpec(
            WORKLOAD,
            POLICIES["TPP"],
            CONFIG,
            label="tpp",
            trace_path=str(tmp_path / "warm.jsonl"),
        )
        first = executor.run_one(cold)
        second = executor.run_one(warm)
        assert executor.stats.cache_hits == 1
        assert first.to_dict() == second.to_dict()
        # The cold run traced real simulation events...
        assert any(e["type"] == "batch" for e in read_events(cold.trace_path))
        # ...the warm run traced exactly one cache_hit.
        warm_events = read_events(warm.trace_path)
        assert len(warm_events) == 1
        assert warm_events[0]["type"] == "cache_hit"
        assert warm_events[0]["label"] == "tpp"
        assert warm_events[0]["fingerprint"] == warm.fingerprint()

    def test_untraced_cache_hit_writes_nothing(self, tmp_path):
        executor = ParallelExecutor(jobs=1, cache=tmp_path / "cache")
        spec = CellSpec(WORKLOAD, POLICIES["TPP"], CONFIG)
        executor.run_one(spec)
        executor.run_one(spec)
        assert executor.stats.cache_hits == 1
        assert not list(tmp_path.glob("*.jsonl"))

    def test_tracer_with_executor_rejected(self):
        from repro.obs import Tracer

        with pytest.raises(ValueError, match="trace_path"):
            run_experiment(
                WORKLOAD,
                POLICIES["TPP"],
                CONFIG,
                tracer=Tracer(),
                executor=ParallelExecutor(jobs=1),
            )
