"""Tests for experiment configuration."""

import pytest

from repro.core.config import ExperimentConfig, ratio_to_cxl_multiple
from repro.memsim.tier import CXL1_CONFIG, CXL2_CONFIG


class TestRatioParsing:
    @pytest.mark.parametrize("label,n", [("1:8", 8), ("1:16", 16), ("1:32", 32)])
    def test_paper_ratios(self, label, n):
        assert ratio_to_cxl_multiple(label) == n

    @pytest.mark.parametrize("bad", ["2:8", "1:0", "8", "1:8:2", "one:eight"])
    def test_bad_labels(self, bad):
        with pytest.raises(ValueError):
            ratio_to_cxl_multiple(bad)


class TestExperimentConfig:
    def test_defaults_are_cxl1(self):
        cfg = ExperimentConfig(local_fraction=0.06)
        assert cfg.memory is CXL1_CONFIG or cfg.memory.name == "CXL-1"
        assert cfg.cxl_multiple == 32

    def test_cxl2_selectable(self):
        cfg = ExperimentConfig(local_fraction=0.1, memory=CXL2_CONFIG)
        assert cfg.memory.name == "CXL-2"

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(local_fraction=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(local_fraction=0.1, warmup_fraction=1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(local_fraction=0.1, ratio_label="8:1")
