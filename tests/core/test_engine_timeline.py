"""Timeline and accounting details of the engine + metrics pipeline."""

import pytest

from repro.core.engine import SimulationEngine
from repro.memsim.machine import Machine, MachineConfig
from repro.policies.static_policy import StaticNoMigration
from repro.workloads.trace import SyntheticZipfWorkload


def run_engine(batches=10, local=100, pages=1000):
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=pages * 2)
    )
    workload = SyntheticZipfWorkload(
        num_pages=pages, accesses_per_batch=1_000, seed=3
    )
    engine = SimulationEngine(machine, workload, StaticNoMigration())
    result = engine.run(max_batches=batches)
    return engine, result


class TestTimelines:
    def test_batches_tile_the_timeline(self):
        engine, __ = run_engine()
        records = engine.metrics.records
        for a, b in zip(records, records[1:]):
            assert b.start_ns == pytest.approx(a.end_ns)

    def test_result_time_equals_last_end(self):
        engine, result = run_engine()
        assert result.total_time_ns == pytest.approx(
            engine.metrics.records[-1].end_ns
        )

    def test_hit_ratio_timeline_matches_records(self):
        engine, result = run_engine()
        assert len(result.hit_ratio_timeline) == len(engine.metrics.records)
        for (t, hr), rec in zip(result.hit_ratio_timeline, engine.metrics.records):
            assert t == pytest.approx(rec.end_ns)
            assert hr == pytest.approx(rec.hit_ratio)

    def test_warmup_exclusion_changes_steady_metrics(self):
        __, result_with = run_engine(batches=20)
        # Same records, different warmup split.
        engine, __ = run_engine(batches=20)
        result_without = engine.metrics.finalize(
            policy_name="p",
            workload_name="w",
            traffic_breakdown={},
            migration_bytes=0,
            warmup_fraction=0.0,
        )
        # Static placement: steady metrics identical regardless of
        # warmup (no convergence) -- but both must be well-formed.
        assert 0 <= result_with.steady_hit_ratio <= 1
        assert 0 <= result_without.steady_hit_ratio <= 1
        assert result_without.total_ops >= result_with.total_ops * 0.99


class TestAggregateConsistency:
    def test_total_accesses_match_traffic(self):
        engine, result = run_engine()
        assert result.total_accesses == engine.machine.traffic.total_accesses

    def test_overall_hit_ratio_matches_traffic(self):
        engine, result = run_engine()
        assert result.overall_hit_ratio == pytest.approx(
            engine.machine.traffic.local_hit_ratio
        )

    def test_per_batch_hit_sums_to_overall(self):
        engine, result = run_engine()
        records = engine.metrics.records
        local = sum(r.local_accesses for r in records)
        total = sum(r.num_accesses for r in records)
        assert result.overall_hit_ratio == pytest.approx(local / total)
