"""Tests for the experiment runner facade."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.runner import (
    build_all_local_machine,
    build_machine,
    compare_policies,
    run_all_local,
    run_experiment,
)
from repro.memsim.tier import CXL1_CONFIG, CXL2_CONFIG
from repro.policies.freqtier import FreqTier, FreqTierConfig
from repro.policies.static_policy import StaticNoMigration
from repro.workloads.trace import SyntheticZipfWorkload


def fast_config(**kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        local_fraction=kwargs.pop("local_fraction", 0.1),
        max_batches=kwargs.pop("max_batches", 10),
        **kwargs,
    )


def workload_factory():
    return SyntheticZipfWorkload(num_pages=2000, accesses_per_batch=2000, seed=4)


class TestBuildMachine:
    def test_local_sized_from_fraction(self):
        m = build_machine(10_000, fast_config(local_fraction=0.06))
        assert m.config.local_capacity_pages == 600

    def test_cxl_holds_footprint_plus_headroom(self):
        m = build_machine(10_000, fast_config())
        assert (
            m.config.local_capacity_pages + m.config.cxl_capacity_pages
            > 10_000
        )

    def test_ratio_respected_for_large_locals(self):
        cfg = fast_config(local_fraction=0.24, ratio_label="1:8")
        m = build_machine(10_000, cfg)
        assert m.config.cxl_capacity_pages >= m.config.local_capacity_pages * 8

    def test_minimum_local(self):
        m = build_machine(100, fast_config(local_fraction=0.01))
        assert m.config.local_capacity_pages >= 32

    def test_memory_config_forwarded(self):
        cfg = fast_config(memory=CXL2_CONFIG)
        m = build_machine(1000, cfg)
        assert m.config.memory.name == "CXL-2"

    def test_all_local_machine(self):
        m = build_all_local_machine(5000, CXL1_CONFIG)
        assert m.config.local_capacity_pages > 5000


class TestRunExperiment:
    def test_basic_run(self):
        result = run_experiment(workload_factory, StaticNoMigration, fast_config())
        assert result.policy_name == "Static"
        assert result.total_accesses == 20_000

    def test_all_local_hit_ratio_is_one(self):
        result = run_all_local(workload_factory, fast_config())
        assert result.overall_hit_ratio == pytest.approx(1.0)

    def test_compare_policies_includes_all_local(self):
        results = compare_policies(
            workload_factory,
            {"Static": StaticNoMigration},
            fast_config(),
        )
        assert set(results) == {"AllLocal", "Static"}
        rel = results["Static"].relative_to(results["AllLocal"])
        assert rel["throughput"] is not None
        assert rel["throughput"] <= 1.001

    def test_compare_policies_without_baseline(self):
        results = compare_policies(
            workload_factory,
            {"Static": StaticNoMigration},
            fast_config(),
            include_all_local=False,
        )
        assert set(results) == {"Static"}

    def test_freqtier_runs_through_facade(self):
        config = fast_config(max_batches=40)
        result = run_experiment(
            workload_factory,
            lambda: FreqTier(
                config=FreqTierConfig(
                    sample_batch_size=300,
                    pebs_base_period=2,
                    window_accesses=20_000,
                )
            ),
            config,
        )
        assert result.policy_stats["promotions"] > 0
