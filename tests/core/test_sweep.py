"""Tests for the parameter-sweep helper."""

from repro.core.config import ExperimentConfig
from repro.core.sweep import sweep
from repro.policies.freqtier import FreqTier, FreqTierConfig
from repro.workloads.trace import SyntheticZipfWorkload


def test_sweep_runs_one_experiment_per_value():
    def workload():
        return SyntheticZipfWorkload(num_pages=1000, accesses_per_batch=1000, seed=0)

    def factory_for(cbf_counters: int):
        def make():
            return FreqTier(
                config=FreqTierConfig(
                    cbf_num_counters=cbf_counters,
                    sample_batch_size=200,
                    pebs_base_period=2,
                    window_accesses=50_000,
                )
            )

        return make

    config = ExperimentConfig(local_fraction=0.1, max_batches=5)
    results = sweep(workload, factory_for, [256, 1024], config)
    assert set(results) == {256, 1024}
    for res in results.values():
        assert res.total_accesses == 5_000
