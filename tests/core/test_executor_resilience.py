"""Executor resilience: retries, keep_going, crash recovery, timeouts.

Crash cells are built from fault plans, not special policies:
``crash_after_batches`` raises :class:`InjectedCrash` inside the cell
(an ordinary, attributable worker exception) and ``crash_hard=True``
calls ``os._exit`` -- the unattributable worker death that breaks the
whole ``ProcessPoolExecutor``, exactly like a segfaulting daemon.
"""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig
from repro.core.parallel import (
    CellSpec,
    FailedCell,
    ParallelExecutor,
    PolicySpec,
    WorkloadSpec,
)
from repro.faults import FaultPlan, InjectedCrash

WORKLOAD = WorkloadSpec("zipf", num_pages=512, alpha=1.1, seed=3)
POLICY = PolicySpec("freqtier", seed=3)
CONFIG = ExperimentConfig(local_fraction=0.1, max_batches=8, seed=3)

SOFT_CRASH = FaultPlan(crash_after_batches=2)
HARD_CRASH = FaultPlan(crash_after_batches=2, crash_hard=True)


def _grid(crash_plan=None, crash_at=1, n=3):
    """n cells; the one at ``crash_at`` carries the crash plan."""
    return [
        CellSpec(
            WORKLOAD,
            POLICY.with_params(seed=10 + i),
            CONFIG,
            label=f"cell{i}",
            faults=crash_plan if i == crash_at else None,
        )
        for i in range(n)
    ]


def _reference_results():
    """Fault-free serial results for the non-crashing grid positions."""
    return ParallelExecutor(jobs=1).run(_grid(crash_plan=None))


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="cell_timeout"):
            ParallelExecutor(jobs=1, cell_timeout=0)
        with pytest.raises(ValueError, match="retries"):
            ParallelExecutor(jobs=1, retries=-1)


class TestSerialPath:
    def test_crash_raises_by_default(self):
        with pytest.raises(InjectedCrash):
            ParallelExecutor(jobs=1).run(_grid(SOFT_CRASH))

    def test_keep_going_records_exactly_one_failed_cell(self):
        ex = ParallelExecutor(jobs=1, keep_going=True)
        results = ex.run(_grid(SOFT_CRASH))
        reference = _reference_results()
        assert isinstance(results[1], FailedCell)
        assert results[1].label == "cell1"
        assert results[1].attempts == 1
        assert "InjectedCrash" in results[1].error
        for i in (0, 2):
            assert results[i].to_dict() == reference[i].to_dict()
        assert ex.stats.failures == 1
        assert ex.stats.executed == 3

    def test_retry_budget_and_accounting(self):
        ex = ParallelExecutor(jobs=1, retries=2, keep_going=True)
        results = ex.run(_grid(SOFT_CRASH))
        assert isinstance(results[1], FailedCell)
        assert results[1].attempts == 3  # 1 try + 2 retries
        assert ex.stats.retries == 2
        assert ex.stats.failures == 1


class TestPoolPath:
    def test_ordinary_worker_exception_keeps_pool_alive(self):
        ex = ParallelExecutor(jobs=2, keep_going=True)
        results = ex.run(_grid(SOFT_CRASH))
        reference = _reference_results()
        assert isinstance(results[1], FailedCell)
        for i in (0, 2):
            assert results[i].to_dict() == reference[i].to_dict()
        assert ex.stats.pool_rebuilds == 0
        assert ex.stats.failures == 1

    def test_hard_crash_recovers_other_cells(self):
        """A worker dying mid-cell breaks the pool; the executor must
        rebuild it, isolate, attribute the crash, and return every
        innocent cell's result bit-identical to a clean serial run."""
        ex = ParallelExecutor(jobs=2, keep_going=True)
        results = ex.run(_grid(HARD_CRASH))
        reference = _reference_results()
        assert isinstance(results[1], FailedCell)
        assert results[1].label == "cell1"
        for i in (0, 2):
            assert results[i].to_dict() == reference[i].to_dict()
        assert ex.stats.pool_rebuilds >= 1
        assert ex.stats.failures == 1
        assert ex.stats.executed == 3

    def test_hard_crash_raises_without_keep_going(self):
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            ParallelExecutor(jobs=2).run(_grid(HARD_CRASH))

    def test_hard_crash_with_retries_charges_only_the_crasher(self):
        ex = ParallelExecutor(jobs=2, retries=1, keep_going=True)
        results = ex.run(_grid(HARD_CRASH))
        assert isinstance(results[1], FailedCell)
        assert results[1].attempts == 2  # charged once per isolated crash
        assert ex.stats.retries == 1
        assert ex.stats.failures == 1

    def test_running_cell_timeout_fails_cell_and_rebuilds_pool(self):
        slow = ExperimentConfig(local_fraction=0.1, max_batches=100_000, seed=3)
        big = WorkloadSpec(
            "zipf", num_pages=4096, alpha=1.1, accesses_per_batch=50_000, seed=3
        )
        specs = [
            CellSpec(big, POLICY.with_params(seed=s), slow, label=f"slow{s}")
            for s in (0, 1)
        ]
        ex = ParallelExecutor(jobs=2, cell_timeout=0.5, keep_going=True)
        results = ex.run(specs)
        assert all(isinstance(r, FailedCell) for r in results)
        assert all("cell_timeout" in r.error for r in results)
        assert ex.stats.timeouts >= 1
        assert ex.stats.pool_rebuilds >= 1
        assert ex.stats.failures == 2


class TestFailureCaching:
    def test_failed_cells_never_cached(self, tmp_path):
        ex = ParallelExecutor(jobs=1, keep_going=True, cache=tmp_path)
        specs = _grid(SOFT_CRASH)
        results = ex.run(specs)
        assert isinstance(results[1], FailedCell)
        assert ex.stats.cached_results == 2  # only the two good cells
        assert specs[1].fingerprint() not in ex.cache

        rerun = ParallelExecutor(jobs=1, keep_going=True, cache=tmp_path)
        again = rerun.run(specs)
        assert rerun.stats.cache_hits == 2
        assert rerun.stats.executed == 1  # the crasher re-ran (and re-failed)
        assert isinstance(again[1], FailedCell)
