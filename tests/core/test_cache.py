"""Result cache: round-trips, content addressing, schema versioning."""

from __future__ import annotations

import json

import pytest

import repro.core.cache as cache_mod
from repro.core.cache import ResultCache, cell_fingerprint, config_to_dict
from repro.core.config import ExperimentConfig
from repro.core.parallel import (
    CellSpec,
    ParallelExecutor,
    PolicySpec,
    WorkloadSpec,
    run_cell,
)
from repro.memsim.tier import CXL2_CONFIG

WORKLOAD = WorkloadSpec("zipf", num_pages=512, alpha=1.1, seed=3)
POLICY = PolicySpec("freqtier", seed=3)
CONFIG = ExperimentConfig(local_fraction=0.1, max_batches=8, seed=3)


def _spec(**overrides) -> CellSpec:
    fields = {"workload": WORKLOAD, "policy": POLICY, "config": CONFIG}
    fields.update(overrides)
    return CellSpec(**fields)


def test_result_round_trips_through_dict():
    result = run_cell(_spec())
    clone = type(result).from_dict(
        json.loads(json.dumps(result.to_dict()))
    )
    assert clone.to_dict() == result.to_dict()
    assert clone.hit_ratio_timeline == result.hit_ratio_timeline
    assert clone.steady_p50_latency_ns == result.steady_p50_latency_ns


def test_cache_hit_returns_equal_result(tmp_path):
    cache = ResultCache(tmp_path)
    result = run_cell(_spec())
    fp = _spec().fingerprint()
    cache.put(fp, result)
    hit = cache.get(fp)
    assert hit is not None
    assert hit.to_dict() == result.to_dict()
    assert cache.hits == 1


def test_cache_miss_on_absent_key(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("0" * 64) is None
    assert cache.misses == 1


@pytest.mark.parametrize(
    "variant",
    [
        _spec(workload=WORKLOAD.with_params(seed=4)),
        _spec(workload=WORKLOAD.with_params(alpha=1.2)),
        _spec(policy=POLICY.with_params(seed=4)),
        _spec(policy=PolicySpec("tpp", seed=3)),
        _spec(policy=None),
        _spec(config=ExperimentConfig(local_fraction=0.2, max_batches=8, seed=3)),
        _spec(config=ExperimentConfig(local_fraction=0.1, max_batches=9, seed=3)),
        _spec(config=ExperimentConfig(local_fraction=0.1, max_batches=8, seed=4)),
        _spec(
            config=ExperimentConfig(
                local_fraction=0.1, max_batches=8, seed=3, memory=CXL2_CONFIG
            )
        ),
    ],
)
def test_any_param_change_changes_fingerprint(variant):
    assert variant.fingerprint() != _spec().fingerprint()


def test_fingerprint_is_order_insensitive_and_stable():
    a = cell_fingerprint({"x": 1, "y": 2})
    b = cell_fingerprint({"y": 2, "x": 1})
    assert a == b
    assert a == cell_fingerprint({"x": 1, "y": 2})


def test_schema_version_bump_misses(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    result = run_cell(_spec())
    fp = _spec().fingerprint()
    cache.put(fp, result)
    monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1)
    assert cache.get(fp) is None  # stored under the old schema


def test_corrupt_entry_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(tmp_path)
    fp = "a" * 64
    cache.path_for(fp).write_text("{not json", encoding="utf-8")
    assert cache.get(fp) is None


def test_executor_cache_integration(tmp_path):
    """Second run of the same cells is served fully from cache."""
    specs = [_spec(), _spec(policy=None)]
    cold = ParallelExecutor(jobs=1, cache=tmp_path)
    first = cold.run(specs)
    assert cold.stats.executed == 2 and cold.stats.cache_hits == 0

    warm = ParallelExecutor(jobs=1, cache=tmp_path)
    second = warm.run(specs)
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 2
    for a, b in zip(first, second):
        assert a.to_dict() == b.to_dict()


def test_cache_len_contains_clear(tmp_path):
    cache = ResultCache(tmp_path)
    result = run_cell(_spec())
    fp = _spec().fingerprint()
    assert fp not in cache
    cache.put(fp, result)
    assert fp in cache
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


def test_config_to_dict_covers_identity_fields():
    d = config_to_dict(CONFIG)
    assert d["local_fraction"] == 0.1
    assert d["seed"] == 3
    assert d["memory"]["name"] == "CXL-1"
    assert d["memory"]["cxl"]["latency_ns"] > d["memory"]["local"]["latency_ns"]
