"""Result cache: round-trips, content addressing, schema versioning."""

from __future__ import annotations

import json

import pytest

import repro.core.cache as cache_mod
from repro.core.cache import ResultCache, cell_fingerprint, config_to_dict
from repro.core.config import ExperimentConfig
from repro.core.parallel import (
    CellSpec,
    ParallelExecutor,
    PolicySpec,
    WorkloadSpec,
    run_cell,
)
from repro.memsim.tier import CXL2_CONFIG

WORKLOAD = WorkloadSpec("zipf", num_pages=512, alpha=1.1, seed=3)
POLICY = PolicySpec("freqtier", seed=3)
CONFIG = ExperimentConfig(local_fraction=0.1, max_batches=8, seed=3)


def _spec(**overrides) -> CellSpec:
    fields = {"workload": WORKLOAD, "policy": POLICY, "config": CONFIG}
    fields.update(overrides)
    return CellSpec(**fields)


def test_result_round_trips_through_dict():
    result = run_cell(_spec())
    clone = type(result).from_dict(
        json.loads(json.dumps(result.to_dict()))
    )
    assert clone.to_dict() == result.to_dict()
    assert clone.hit_ratio_timeline == result.hit_ratio_timeline
    assert clone.steady_p50_latency_ns == result.steady_p50_latency_ns


def test_cache_hit_returns_equal_result(tmp_path):
    cache = ResultCache(tmp_path)
    result = run_cell(_spec())
    fp = _spec().fingerprint()
    cache.put(fp, result)
    hit = cache.get(fp)
    assert hit is not None
    assert hit.to_dict() == result.to_dict()
    assert cache.hits == 1


def test_cache_miss_on_absent_key(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("0" * 64) is None
    assert cache.misses == 1


@pytest.mark.parametrize(
    "variant",
    [
        _spec(workload=WORKLOAD.with_params(seed=4)),
        _spec(workload=WORKLOAD.with_params(alpha=1.2)),
        _spec(policy=POLICY.with_params(seed=4)),
        _spec(policy=PolicySpec("tpp", seed=3)),
        _spec(policy=None),
        _spec(config=ExperimentConfig(local_fraction=0.2, max_batches=8, seed=3)),
        _spec(config=ExperimentConfig(local_fraction=0.1, max_batches=9, seed=3)),
        _spec(config=ExperimentConfig(local_fraction=0.1, max_batches=8, seed=4)),
        _spec(
            config=ExperimentConfig(
                local_fraction=0.1, max_batches=8, seed=3, memory=CXL2_CONFIG
            )
        ),
    ],
)
def test_any_param_change_changes_fingerprint(variant):
    assert variant.fingerprint() != _spec().fingerprint()


def test_fingerprint_is_order_insensitive_and_stable():
    a = cell_fingerprint({"x": 1, "y": 2})
    b = cell_fingerprint({"y": 2, "x": 1})
    assert a == b
    assert a == cell_fingerprint({"x": 1, "y": 2})


def test_schema_version_bump_misses(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    result = run_cell(_spec())
    fp = _spec().fingerprint()
    cache.put(fp, result)
    monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1)
    assert cache.get(fp) is None  # stored under the old schema


def test_corrupt_entry_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(tmp_path)
    fp = "a" * 64
    cache.path_for(fp).write_text("{not json", encoding="utf-8")
    assert cache.get(fp) is None


class TestQuarantine:
    def test_corrupt_json_quarantined_then_recomputable(self, tmp_path):
        """A truncated/garbled entry becomes a miss, is renamed to
        ``.corrupt`` (kept for diagnosis, never re-read), and the slot
        is free for the recomputed result."""
        cache = ResultCache(tmp_path)
        fp = _spec().fingerprint()
        cache.path_for(fp).write_text('{"schema": 1, "result"', encoding="utf-8")
        assert cache.get(fp) is None
        assert not cache.path_for(fp).exists()
        assert cache.path_for(fp).with_suffix(".corrupt").exists()

        result = run_cell(_spec())
        cache.put(fp, result)
        hit = cache.get(fp)
        assert hit is not None and hit.to_dict() == result.to_dict()

    def test_undeserializable_payload_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = "b" * 64
        cache.path_for(fp).write_text(
            json.dumps({"schema": cache_mod.SCHEMA_VERSION, "result": {"x": 1}}),
            encoding="utf-8",
        )
        assert cache.get(fp) is None
        assert cache.path_for(fp).with_suffix(".corrupt").exists()

    def test_schema_mismatch_is_plain_miss_not_quarantine(self, tmp_path):
        """An old-schema entry is valid data, just stale: orphan it in
        place, do not brand it corrupt."""
        cache = ResultCache(tmp_path)
        fp = "c" * 64
        cache.path_for(fp).write_text(
            json.dumps({"schema": -1, "result": {}}), encoding="utf-8"
        )
        assert cache.get(fp) is None
        assert cache.path_for(fp).exists()
        assert not cache.path_for(fp).with_suffix(".corrupt").exists()

    def test_absent_entry_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("d" * 64) is None
        assert not list(tmp_path.glob("*.corrupt"))


class TestFaultFingerprinting:
    """Fault plans join the cache key only when they inject something,
    so pre-existing fault-free cache entries stay valid."""

    def test_no_plan_and_inactive_plan_share_fingerprint(self):
        from repro.faults import FaultPlan

        bare = _spec()
        inactive = _spec(faults=FaultPlan(seed=99))
        assert not inactive.faults.active
        assert bare.fingerprint() == inactive.fingerprint()

    def test_active_plan_changes_fingerprint(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(migration_fail_prob=0.01)
        assert _spec(faults=plan).fingerprint() != _spec().fingerprint()

    def test_fault_seed_is_part_of_the_key(self):
        from repro.faults import FaultPlan

        a = _spec(faults=FaultPlan(migration_fail_prob=0.01, seed=1))
        b = _spec(faults=FaultPlan(migration_fail_prob=0.01, seed=2))
        assert a.fingerprint() != b.fingerprint()

    def test_faulted_and_fault_free_results_never_collide(self, tmp_path):
        """End to end: run a faulted grid, then the fault-free twin --
        the second run must miss the faulted entries entirely."""
        from repro.faults import FaultPlan

        plan = FaultPlan(migration_fail_prob=0.05)
        faulted = ParallelExecutor(jobs=1, cache=tmp_path)
        fault_free = ParallelExecutor(jobs=1, cache=tmp_path)
        a = faulted.run_one(_spec(faults=plan))
        b = fault_free.run_one(_spec())
        assert faulted.stats.cache_hits == 0
        assert fault_free.stats.cache_hits == 0
        assert a.to_dict() != b.to_dict()

        warm = ParallelExecutor(jobs=1, cache=tmp_path)
        assert warm.run_one(_spec()).to_dict() == b.to_dict()
        assert warm.stats.cache_hits == 1


def test_executor_cache_integration(tmp_path):
    """Second run of the same cells is served fully from cache."""
    specs = [_spec(), _spec(policy=None)]
    cold = ParallelExecutor(jobs=1, cache=tmp_path)
    first = cold.run(specs)
    assert cold.stats.executed == 2 and cold.stats.cache_hits == 0

    warm = ParallelExecutor(jobs=1, cache=tmp_path)
    second = warm.run(specs)
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 2
    for a, b in zip(first, second):
        assert a.to_dict() == b.to_dict()


def test_cache_len_contains_clear(tmp_path):
    cache = ResultCache(tmp_path)
    result = run_cell(_spec())
    fp = _spec().fingerprint()
    assert fp not in cache
    cache.put(fp, result)
    assert fp in cache
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


def test_config_to_dict_covers_identity_fields():
    d = config_to_dict(CONFIG)
    assert d["local_fraction"] == 0.1
    assert d["seed"] == 3
    assert d["memory"]["name"] == "CXL-1"
    assert d["memory"]["cxl"]["latency_ns"] > d["memory"]["local"]["latency_ns"]


def test_len_and_clear_ignore_inflight_tmp_files(tmp_path):
    """A crashed (or still-running) writer's ``.tmp-*.json`` must not
    be counted as an entry nor deleted by ``clear()``."""
    cache = ResultCache(tmp_path)
    cache.put(_spec().fingerprint(), run_cell(_spec()))
    inflight = tmp_path / ".tmp-abc123.json"
    inflight.write_text("{}")
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0
    assert inflight.exists()
