"""Tests for interleaved allocation."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER


def interleaved_machine(local=100, cxl=300) -> Machine:
    return Machine(
        MachineConfig(
            local_capacity_pages=local,
            cxl_capacity_pages=cxl,
            allocation_policy="interleave",
        )
    )


class TestInterleavedAllocation:
    def test_proportional_split(self):
        machine = interleaved_machine(local=100, cxl=300)
        machine.allocate(200)
        # 1:3 capacity ratio -> ~50 local, ~150 CXL.
        assert machine.local_used_pages == pytest.approx(50, abs=2)
        assert machine.cxl_used_pages == pytest.approx(150, abs=2)

    def test_stripe_is_spread_not_prefix(self):
        machine = interleaved_machine(local=100, cxl=100)
        region = machine.allocate(100)
        pages = np.arange(region.start_page, region.end_page)
        placement = machine.page_table.tier_of(pages)
        # Local pages appear in both halves of the region.
        first_half = placement[:50]
        second_half = placement[50:]
        assert np.count_nonzero(first_half == LOCAL_TIER) > 0
        assert np.count_nonzero(second_half == LOCAL_TIER) > 0

    def test_respects_capacity(self):
        machine = interleaved_machine(local=10, cxl=1000)
        machine.allocate(900)
        assert machine.local_used_pages <= 10
        assert machine.cxl_used_pages <= 1000
        assert machine.page_table.mapped_pages == 900

    def test_migration_still_works(self):
        machine = interleaved_machine()
        machine.allocate(200)
        local_pages = machine.page_table.pages_in_tier(LOCAL_TIER)
        moved = machine.demote(local_pages[:5])
        assert moved == 5

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(
                local_capacity_pages=10,
                cxl_capacity_pages=10,
                allocation_policy="random",
            )

    def test_default_unchanged(self):
        machine = Machine(
            MachineConfig(local_capacity_pages=50, cxl_capacity_pages=100)
        )
        machine.allocate(80)
        # Local-first: the prefix is local.
        placement = machine.page_table.tier_of(np.arange(80))
        assert np.all(placement[:50] == LOCAL_TIER)
        assert np.all(placement[50:] == CXL_TIER)


class TestInterleaveVsTiering:
    def test_tiering_beats_interleave_on_skew(self):
        """For skewed, latency-sensitive workloads the paper's whole
        premise holds: placing hot pages local beats striping."""
        from repro import FreqTier, FreqTierConfig
        from repro.core.engine import SimulationEngine
        from repro.policies.static_policy import StaticNoMigration
        from repro.workloads.trace import SyntheticZipfWorkload

        def run(allocation_policy: str, policy) -> float:
            workload = SyntheticZipfWorkload(
                num_pages=4000, alpha=1.3, accesses_per_batch=10_000, seed=9
            )
            machine = Machine(
                MachineConfig(
                    local_capacity_pages=400,
                    cxl_capacity_pages=8000,
                    allocation_policy=allocation_policy,
                )
            )
            engine = SimulationEngine(machine, workload, policy)
            result = engine.run(max_batches=50)
            return result.steady_hit_ratio

        interleave_hit = run("interleave", StaticNoMigration())
        tiered_hit = run(
            "local_first",
            FreqTier(
                config=FreqTierConfig(
                    sample_batch_size=1000,
                    pebs_base_period=4,
                    window_accesses=100_000,
                ),
                seed=9,
            ),
        )
        # Interleave pins ~10% of accesses local by construction;
        # frequency tiering concentrates the hot set.
        assert tiered_hit > interleave_hit + 0.3
