"""Property-based tests on machine invariants.

Under arbitrary interleavings of allocations, promotions and demotions:

1. Page counts are conserved (no page lost, duplicated, or unmapped).
2. Tier capacities are never exceeded.
3. The traffic meter's migration totals equal the sum of successful
   moves.
4. Watermark predicates are consistent with free-page counts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER


@st.composite
def machine_and_ops(draw):
    local = draw(st.integers(4, 64))
    cxl = draw(st.integers(32, 512))
    alloc = draw(st.integers(1, local + cxl))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["promote", "demote"]),
                st.integers(0, 600),  # start page
                st.integers(1, 64),  # count
            ),
            max_size=30,
        )
    )
    return local, cxl, alloc, ops


@given(machine_and_ops())
@settings(max_examples=120, deadline=None)
def test_migration_invariants(params):
    local, cxl, alloc, ops = params
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=cxl)
    )
    machine.allocate(alloc)
    total_moved = 0
    for op, start, count in ops:
        pages = np.arange(start, min(start + count, alloc), dtype=np.int64)
        if pages.size == 0:
            continue
        if op == "promote":
            total_moved += machine.promote(pages)
        else:
            total_moved += machine.demote(pages)

        # Capacity invariants hold after every operation.
        assert 0 <= machine.local_used_pages <= local
        assert 0 <= machine.cxl_used_pages <= cxl
        # Conservation: every allocated page is on exactly one tier.
        assert machine.page_table.mapped_pages == alloc

    assert machine.traffic.pages_migrated == total_moved
    # Watermark predicates agree with the free-page arithmetic.
    assert machine.below_promo_wmark() == (
        machine.local_free_pages < machine.promo_wmark_pages
    )
    assert machine.above_demote_wmark() == (
        machine.local_free_pages > machine.demote_wmark_pages
    )


@given(
    local=st.integers(4, 100),
    cxl=st.integers(4, 100),
    sizes=st.lists(st.integers(1, 40), min_size=1, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_allocation_local_first(local, cxl, sizes):
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=cxl)
    )
    allocated = 0
    for size in sizes:
        if allocated + size > local + cxl:
            break
        machine.allocate(size)
        allocated += size
        # Local-first: CXL is used only once local is exhausted.
        if machine.cxl_used_pages > 0:
            assert machine.local_free_pages == 0
    assert machine.local_used_pages + machine.cxl_used_pages == allocated


@given(
    alloc=st.integers(10, 200),
    accesses=st.lists(st.integers(0, 199), min_size=1, max_size=200),
)
@settings(max_examples=60, deadline=None)
def test_access_accounting_consistent(alloc, accesses):
    machine = Machine(
        MachineConfig(local_capacity_pages=50, cxl_capacity_pages=400)
    )
    machine.allocate(alloc)
    pages = np.asarray([a % alloc for a in accesses], dtype=np.int64)
    local, cxl = machine.service_accesses(pages)
    assert local + cxl == len(pages)
    assert machine.traffic.total_accesses == len(pages)
    placement = machine.placement_of(pages)
    assert local == int(np.count_nonzero(placement == LOCAL_TIER))
    assert cxl == int(np.count_nonzero(placement == CXL_TIER))
