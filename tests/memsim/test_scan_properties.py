"""Property-based tests for the demotion scan and cost model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.address_space import AddressSpace
from repro.memsim.costmodel import CostModel
from repro.memsim.tier import CXL1_CONFIG


@st.composite
def space_and_scan(draw):
    region_sizes = draw(
        st.lists(st.integers(1, 50), min_size=1, max_size=6)
    )
    total = sum(region_sizes)
    start = draw(st.integers(0, total))
    count = draw(st.integers(0, 2 * total))
    return region_sizes, start, count


@given(space_and_scan())
@settings(max_examples=150, deadline=None)
def test_scan_from_invariants(params):
    region_sizes, start, count = params
    space = AddressSpace()
    for size in region_sizes:
        space.map_region(size)
    total = space.total_pages

    pages, resume = space.scan_from(start, count)

    # Never more than requested, never more than exist, no duplicates.
    assert len(pages) <= min(count, total)
    assert len(np.unique(pages)) == len(pages)
    # All returned pages are mapped.
    for p in pages[:20]:
        assert space.is_mapped(int(p))
    # Full requests return everything.
    if count >= total:
        assert len(pages) == total
    # The resume cursor is within the address space.
    assert 0 <= resume <= space.max_page


@given(space_and_scan())
@settings(max_examples=80, deadline=None)
def test_repeated_scans_cover_whole_space(params):
    region_sizes, start, __ = params
    space = AddressSpace()
    for size in region_sizes:
        space.map_region(size)
    total = space.total_pages
    chunk = max(1, total // 3)

    seen: set[int] = set()
    cursor = start
    for __ in range(6):  # 6 chunks of total/3 >= one full lap
        pages, cursor = space.scan_from(cursor, chunk)
        seen.update(int(p) for p in pages)
    assert len(seen) == total


@given(
    local=st.integers(0, 50_000),
    cxl=st.integers(0, 50_000),
    extra=st.integers(1, 10_000),
    bpa=st.sampled_from([64, 256, 1024]),
)
@settings(max_examples=100, deadline=None)
def test_cost_monotone_in_accesses(local, cxl, extra, bpa):
    model = CostModel(CXL1_CONFIG)
    base = model.batch_cost(0.0, local, cxl, bytes_per_access=bpa).total_ns
    more_local = model.batch_cost(
        0.0, local + extra, cxl, bytes_per_access=bpa
    ).total_ns
    more_cxl = model.batch_cost(
        0.0, local, cxl + extra, bytes_per_access=bpa
    ).total_ns
    assert more_local >= base
    assert more_cxl >= base
    # CXL accesses are never cheaper than local ones.
    assert more_cxl >= more_local


@given(
    accesses=st.integers(0, 50_000),
    migrated=st.integers(0, 5_000),
    overhead=st.floats(0, 1e7),
)
@settings(max_examples=100, deadline=None)
def test_cost_monotone_in_interference(accesses, migrated, overhead):
    model = CostModel(CXL1_CONFIG)
    base = model.batch_cost(0.0, accesses, accesses).total_ns
    loaded = model.batch_cost(
        0.0, accesses, accesses, pages_migrated=migrated, overhead_ns=overhead
    ).total_ns
    assert loaded >= base
