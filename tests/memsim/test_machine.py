"""Tests for the tiered machine (allocation, watermarks, migration)."""

import numpy as np
import pytest

from repro.memsim.machine import CapacityError, Machine, MachineConfig
from repro.memsim.pagetable import LOCAL_TIER


class TestConfigValidation:
    def test_nonpositive_capacities(self):
        with pytest.raises(ValueError):
            MachineConfig(local_capacity_pages=0, cxl_capacity_pages=10)
        with pytest.raises(ValueError):
            MachineConfig(local_capacity_pages=10, cxl_capacity_pages=-1)

    def test_watermark_ordering(self):
        with pytest.raises(ValueError):
            MachineConfig(
                local_capacity_pages=10,
                cxl_capacity_pages=10,
                demote_wmark_frac=0.01,
                promo_wmark_frac=0.02,
            )

    def test_local_ratio(self):
        cfg = MachineConfig(local_capacity_pages=10, cxl_capacity_pages=310)
        assert cfg.local_ratio == pytest.approx(10 / 320)


class TestAllocation:
    def test_local_first(self, tiny_machine):
        tiny_machine.allocate(5)
        assert tiny_machine.local_used_pages == 5
        assert tiny_machine.cxl_used_pages == 0

    def test_spill_to_cxl(self, tiny_machine):
        tiny_machine.allocate(20)
        assert tiny_machine.local_used_pages == 8
        assert tiny_machine.cxl_used_pages == 12

    def test_capacity_error(self, tiny_machine):
        with pytest.raises(CapacityError):
            tiny_machine.allocate(100)

    def test_region_registered_in_address_space(self, tiny_machine):
        region = tiny_machine.allocate(6, name="heap")
        assert tiny_machine.address_space.region_of(region.start_page).name == "heap"

    def test_multiple_allocations_contiguous(self, tiny_machine):
        r1 = tiny_machine.allocate(3)
        r2 = tiny_machine.allocate(4)
        assert r2.start_page == r1.end_page


class TestMigration:
    @pytest.fixture
    def machine(self, tiny_machine) -> Machine:
        tiny_machine.allocate(30)  # 8 local + 22 cxl
        return tiny_machine

    def test_demote(self, machine):
        moved = machine.demote(np.arange(0, 4))
        assert moved == 4
        assert machine.local_used_pages == 4
        assert machine.traffic.pages_demoted == 4

    def test_promote_requires_free_local(self, machine):
        # Local is full: promotion moves nothing.
        assert machine.promote(np.arange(8, 12)) == 0

    def test_promote_after_demote(self, machine):
        machine.demote(np.arange(0, 4))
        moved = machine.promote(np.arange(8, 20))
        assert moved == 4  # truncated to free local capacity
        assert machine.local_used_pages == 8

    def test_skip_pages_already_on_target(self, machine):
        assert machine.demote(np.arange(8, 12)) == 0  # already CXL

    def test_skip_unmapped_pages(self, machine):
        assert machine.promote(np.array([50])) == 0

    def test_empty_move(self, machine):
        assert machine.move_pages(np.zeros(0, dtype=np.int64), LOCAL_TIER) == 0


class TestWatermarks:
    def test_watermark_pages(self):
        m = Machine(
            MachineConfig(
                local_capacity_pages=1000,
                cxl_capacity_pages=1000,
                demote_wmark_frac=0.04,
                promo_wmark_frac=0.02,
            )
        )
        assert m.demote_wmark_pages == 40
        assert m.promo_wmark_pages == 20

    def test_watermark_floors_at_tiny_capacity(self):
        m = Machine(MachineConfig(local_capacity_pages=10, cxl_capacity_pages=10))
        assert m.demote_wmark_pages >= 2
        assert m.promo_wmark_pages >= 1

    def test_below_promo_wmark_when_full(self, tiny_machine):
        tiny_machine.allocate(30)
        assert tiny_machine.local_free_pages == 0
        assert tiny_machine.below_promo_wmark()

    def test_demotion_deficit(self, tiny_machine):
        tiny_machine.allocate(30)
        deficit = tiny_machine.demotion_deficit_pages()
        assert deficit == tiny_machine.demote_wmark_pages + 1

    def test_above_demote_wmark_after_demotion(self, tiny_machine):
        tiny_machine.allocate(30)
        tiny_machine.demote(np.arange(0, tiny_machine.demotion_deficit_pages()))
        assert tiny_machine.above_demote_wmark()


class TestAccessServicing:
    def test_counts_by_tier(self, tiny_machine):
        tiny_machine.allocate(30)
        local, cxl = tiny_machine.service_accesses(np.arange(0, 16))
        assert local == 8
        assert cxl == 8
        assert tiny_machine.traffic.total_accesses == 16

    def test_unmapped_access_raises(self, tiny_machine):
        tiny_machine.allocate(5)
        with pytest.raises(RuntimeError):
            tiny_machine.service_accesses(np.array([40]))

    def test_empty_batch(self, tiny_machine):
        assert tiny_machine.service_accesses(np.zeros(0, dtype=np.int64)) == (0, 0)


class TestReservations:
    def test_reservation_shrinks_free(self, tiny_machine):
        tiny_machine.reserve_local_pages(3)
        assert tiny_machine.local_free_pages == 5
        tiny_machine.allocate(10)
        assert tiny_machine.local_used_pages == 5

    def test_over_reservation_rejected(self, tiny_machine):
        with pytest.raises(CapacityError):
            tiny_machine.reserve_local_pages(9)

    def test_negative_rejected(self, tiny_machine):
        with pytest.raises(ValueError):
            tiny_machine.reserve_local_pages(-1)
