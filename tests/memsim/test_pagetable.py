"""Tests for the page table / pagemap model."""

import numpy as np
import pytest

from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER, UNMAPPED, PageTable


@pytest.fixture
def table() -> PageTable:
    return PageTable(capacity_pages=100)


class TestPlacement:
    def test_initially_unmapped(self, table):
        assert table.tier_of(0) == UNMAPPED
        assert table.mapped_pages == 0

    def test_place_and_lookup(self, table):
        table.place(np.arange(10), LOCAL_TIER)
        assert table.tier_of(5) == LOCAL_TIER
        assert table.count_in_tier(LOCAL_TIER) == 10

    def test_replace_moves_between_tiers(self, table):
        table.place(np.arange(10), LOCAL_TIER)
        table.place(np.arange(5), CXL_TIER)
        assert table.count_in_tier(LOCAL_TIER) == 5
        assert table.count_in_tier(CXL_TIER) == 5

    def test_unmap(self, table):
        table.place(np.arange(10), LOCAL_TIER)
        table.unmap(np.arange(4))
        assert table.count_in_tier(LOCAL_TIER) == 6
        assert table.tier_of(0) == UNMAPPED

    def test_vectorized_lookup(self, table):
        table.place(np.array([1, 3]), LOCAL_TIER)
        table.place(np.array([2]), CXL_TIER)
        out = table.tier_of(np.array([1, 2, 3, 4]))
        assert np.array_equal(out, [LOCAL_TIER, CXL_TIER, LOCAL_TIER, UNMAPPED])

    def test_pages_in_tier(self, table):
        table.place(np.array([7, 3, 9]), CXL_TIER)
        assert np.array_equal(table.pages_in_tier(CXL_TIER), [3, 7, 9])

    def test_invalid_tier_rejected(self, table):
        with pytest.raises(ValueError):
            table.place(np.array([0]), 5)
        with pytest.raises(ValueError):
            table.count_in_tier(-1)

    def test_out_of_range_page(self, table):
        with pytest.raises(IndexError):
            table.place(np.array([100]), LOCAL_TIER)
        with pytest.raises(IndexError):
            table.tier_of(np.array([-1]))

    def test_counts_consistent_after_mixed_ops(self, table):
        rng = np.random.default_rng(0)
        for __ in range(20):
            pages = rng.choice(100, size=10, replace=False)
            tier = int(rng.integers(0, 2))
            table.place(pages, tier)
        placement = table.tier_of(np.arange(100))
        assert table.count_in_tier(LOCAL_TIER) == np.sum(placement == LOCAL_TIER)
        assert table.count_in_tier(CXL_TIER) == np.sum(placement == CXL_TIER)

    def test_tier_count_invariant_random_place_unmap(self, table):
        """The incrementally maintained per-tier counts always equal a
        fresh count over the placement array, after any interleaving of
        place/unmap (including re-placing mapped pages)."""
        rng = np.random.default_rng(7)
        for step in range(200):
            pages = rng.integers(0, 100, size=int(rng.integers(1, 30)))
            pages = np.unique(pages)
            if rng.random() < 0.3:
                table.unmap(pages)
            else:
                table.place(pages, int(rng.integers(0, 2)))
            placement = table.tier_of(np.arange(100))
            assert table.count_in_tier(LOCAL_TIER) == int(
                np.count_nonzero(placement == LOCAL_TIER)
            )
            assert table.count_in_tier(CXL_TIER) == int(
                np.count_nonzero(placement == CXL_TIER)
            )
            assert table.mapped_pages == int(
                np.count_nonzero(placement != UNMAPPED)
            )

    def test_lookup_dtype_is_int8(self, table):
        """The placement hot path stays int8 end-to-end (no silent
        promotion to int64 on every batch lookup)."""
        table.place(np.arange(10), LOCAL_TIER)
        assert table.tier_of(np.arange(20)).dtype == np.int8
        assert table.pagemap_read_batch(np.arange(20)).dtype == np.int8


class TestPagemapReads:
    def test_batch_read_values(self, table):
        table.place(np.arange(10), LOCAL_TIER)
        out = table.pagemap_read_batch(np.arange(5, 15))
        assert np.array_equal(out[:5], [LOCAL_TIER] * 5)
        assert np.array_equal(out[5:], [UNMAPPED] * 5)

    def test_read_counter_tracks_batches(self, table):
        table.pagemap_read_batch(np.arange(10))
        table.pagemap_read_batch(np.arange(20))
        assert table.pagemap_reads == 2
        assert table.pagemap_pages_read == 30

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageTable(0)
