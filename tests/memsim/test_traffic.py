"""Tests for traffic accounting (paper Fig. 2)."""

import pytest

from repro._units import PAGE_SIZE
from repro.memsim.traffic import CACHE_LINE_BYTES, TrafficMeter


@pytest.fixture
def meter() -> TrafficMeter:
    return TrafficMeter()


class TestAccessAccounting:
    def test_counts_and_bytes(self, meter):
        meter.record_accesses(local=10, cxl=5)
        assert meter.local_accesses == 10
        assert meter.cxl_accesses == 5
        assert meter.local_access_bytes == 10 * CACHE_LINE_BYTES
        assert meter.total_accesses == 15

    def test_hit_ratio(self, meter):
        meter.record_accesses(local=90, cxl=10)
        assert meter.local_hit_ratio == pytest.approx(0.9)

    def test_empty_hit_ratio(self, meter):
        assert meter.local_hit_ratio == 0.0

    def test_negative_rejected(self, meter):
        with pytest.raises(ValueError):
            meter.record_accesses(-1, 0)


class TestMigrationAccounting:
    def test_promotion_and_demotion_counted_separately(self, meter):
        meter.record_migration(5, promotion=True)
        meter.record_migration(3, promotion=False)
        assert meter.pages_promoted == 5
        assert meter.pages_demoted == 3
        assert meter.pages_migrated == 8

    def test_migration_bytes_read_plus_write(self, meter):
        meter.record_migration(2, promotion=True)
        assert meter.migration_bytes == 2 * PAGE_SIZE * 2

    def test_negative_rejected(self, meter):
        with pytest.raises(ValueError):
            meter.record_migration(-1, promotion=True)


class TestBreakdown:
    def test_fractions_sum_to_one(self, meter):
        meter.record_accesses(100, 50)
        meter.record_migration(4, promotion=True)
        shares = meter.breakdown()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["migration"] > 0

    def test_empty_breakdown(self, meter):
        assert meter.breakdown() == {"local": 0.0, "cxl": 0.0, "migration": 0.0}

    def test_migration_share_matches_paper_form(self, meter):
        """Fig. 2's metric: migration bytes / total traffic bytes."""
        meter.record_accesses(1000, 0)
        meter.record_migration(10, promotion=False)
        expected = (10 * PAGE_SIZE * 2) / (
            1000 * CACHE_LINE_BYTES + 10 * PAGE_SIZE * 2
        )
        assert meter.breakdown()["migration"] == pytest.approx(expected)


class TestWindows:
    def test_windowed_hit_ratio(self, meter):
        meter.record_accesses(100, 100)  # 0.5 so far
        meter.checkpoint(time_ns=0.0)
        meter.record_accesses(90, 10)  # window is 0.9
        assert meter.windowed_hit_ratio() == pytest.approx(0.9)
        assert meter.local_hit_ratio == pytest.approx(190 / 300)

    def test_window_without_checkpoint_falls_back(self, meter):
        meter.record_accesses(3, 1)
        assert meter.windowed_hit_ratio() == pytest.approx(0.75)

    def test_empty_window_falls_back_to_overall(self, meter):
        meter.record_accesses(3, 1)
        meter.checkpoint(0.0)
        assert meter.windowed_hit_ratio() == pytest.approx(0.75)
