"""Tests for the timing model."""

import pytest

from repro.memsim.costmodel import CostModel, CostModelParams
from repro.memsim.tier import CXL1_CONFIG, CXL2_CONFIG


@pytest.fixture
def model() -> CostModel:
    return CostModel(CXL1_CONFIG)


class TestBatchCost:
    def test_zero_batch(self, model):
        cost = model.batch_cost(0.0, 0, 0)
        assert cost.total_ns == 0.0

    def test_cpu_divided_by_threads(self, model):
        cost = model.batch_cost(1600.0, 0, 0)
        assert cost.cpu_ns == pytest.approx(1600 / 16)

    def test_cxl_access_costs_more(self, model):
        local = model.batch_cost(0.0, 1000, 0).total_ns
        cxl = model.batch_cost(0.0, 0, 1000).total_ns
        assert cxl > local

    def test_latency_term_scaling(self, model):
        # At low volume, time is latency-bound and linear in accesses.
        c1 = model.batch_cost(0.0, 100, 0)
        c2 = model.batch_cost(0.0, 200, 0)
        assert c2.local_mem_ns == pytest.approx(2 * c1.local_mem_ns)

    def test_bandwidth_floor_engages_for_bulk_transfers(self, model):
        # 1 MB per access is clearly bandwidth-bound.
        cost = model.batch_cost(0.0, 1000, 0, bytes_per_access=1_000_000)
        expected_floor = 1000 * 1_000_000 / 85.0  # bytes / (bytes/ns)
        assert cost.local_mem_ns == pytest.approx(expected_floor)

    def test_migration_adds_bandwidth_and_cpu(self, model):
        base = model.batch_cost(0.0, 100, 100)
        with_mig = model.batch_cost(0.0, 100, 100, pages_migrated=1000)
        assert with_mig.migration_ns > 0
        assert with_mig.total_ns > base.total_ns

    def test_migration_cpu_shared_across_cores(self, model):
        cost = model.batch_cost(0.0, 0, 0, pages_migrated=16)
        params = model.params
        assert cost.migration_ns == pytest.approx(
            16 * params.migration_cpu_ns_per_page / params.threads
        )

    def test_overhead_shared_across_cores(self, model):
        cost = model.batch_cost(0.0, 0, 0, overhead_ns=1600.0)
        assert cost.overhead_ns == pytest.approx(100.0)

    def test_total_is_sum_of_parts(self, model):
        cost = model.batch_cost(160.0, 50, 50, pages_migrated=2, overhead_ns=32.0)
        assert cost.total_ns == pytest.approx(
            cost.cpu_ns
            + cost.local_mem_ns
            + cost.cxl_mem_ns
            + cost.migration_ns
            + cost.overhead_ns
        )


class TestAllLocalIsUpperBound:
    """Splitting traffic across tiers can never beat all-local."""

    @pytest.mark.parametrize("hit_pct", [0, 25, 50, 75, 99])
    @pytest.mark.parametrize("bpa", [64, 256, 1024])
    def test_tiered_never_faster(self, model, hit_pct, bpa):
        total = 10_000
        local = total * hit_pct // 100
        all_local = model.batch_cost(0.0, total, 0, bytes_per_access=bpa)
        tiered = model.batch_cost(0.0, local, total - local, bytes_per_access=bpa)
        assert tiered.total_ns >= all_local.total_ns * 0.999


class TestCXL2:
    def test_cxl2_slower_than_cxl1(self):
        m1 = CostModel(CXL1_CONFIG)
        m2 = CostModel(CXL2_CONFIG)
        c1 = m1.batch_cost(0.0, 0, 10_000, bytes_per_access=256)
        c2 = m2.batch_cost(0.0, 0, 10_000, bytes_per_access=256)
        assert c2.total_ns > c1.total_ns

    def test_cxl2_is_bandwidth_bound_sooner(self):
        m2 = CostModel(CXL2_CONFIG)
        cost = m2.batch_cost(0.0, 0, 10_000, bytes_per_access=256)
        bw_floor = 10_000 * 256 / 5.5
        assert cost.cxl_mem_ns == pytest.approx(bw_floor)


class TestLoadedLatency:
    def test_idle_equals_spec(self, model):
        assert model.loaded_latency_ns(
            model.memory.local, 0.0
        ) == pytest.approx(model.memory.local.latency_ns)

    def test_monotone_in_utilization(self, model):
        lats = [
            model.loaded_latency_ns(model.memory.local, u)
            for u in (0.0, 0.5, 0.9, 0.99)
        ]
        assert lats == sorted(lats)

    def test_capped(self, model):
        lat = model.loaded_latency_ns(model.memory.local, 0.9999)
        assert lat <= model.memory.local.latency_ns * model.params.max_latency_inflation


class TestExpectedAccessLatency:
    def test_interpolates_between_tiers(self, model):
        lat = model.expected_access_latency_ns(0.5)
        assert (
            model.memory.local.latency_ns
            < lat
            < model.memory.cxl.latency_ns
        )

    def test_hit_ratio_one_is_local(self, model):
        assert model.expected_access_latency_ns(1.0) == pytest.approx(
            model.memory.local.latency_ns
        )

    def test_invalid_hit_ratio(self, model):
        with pytest.raises(ValueError):
            model.expected_access_latency_ns(1.5)


class TestParams:
    def test_effective_parallelism(self):
        p = CostModelParams(threads=8, mlp=4.0)
        assert p.effective_parallelism == 32
