"""Tests for the virtual address space / VMA model."""

import numpy as np
import pytest

from repro.memsim.address_space import AddressSpace, VMARegion


class TestVMARegion:
    def test_bounds(self):
        r = VMARegion(10, 5)
        assert r.end_page == 15
        assert r.contains(10)
        assert r.contains(14)
        assert not r.contains(15)
        assert not r.contains(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            VMARegion(-1, 5)
        with pytest.raises(ValueError):
            VMARegion(0, 0)


class TestAddressSpace:
    def test_sequential_mapping(self):
        space = AddressSpace()
        r1 = space.map_region(100, name="a")
        r2 = space.map_region(50, name="b")
        assert r1.start_page == 0
        assert r2.start_page == 100
        assert space.total_pages == 150
        assert space.max_page == 150

    def test_region_of(self):
        space = AddressSpace()
        space.map_region(10, name="a")
        space.map_region(10, name="b")
        assert space.region_of(5).name == "a"
        assert space.region_of(15).name == "b"
        assert space.region_of(25) is None

    def test_all_pages_ordered(self):
        space = AddressSpace()
        space.map_region(5)
        space.map_region(3)
        pages = space.all_pages()
        assert np.array_equal(pages, np.arange(8))

    def test_empty_space(self):
        space = AddressSpace()
        assert space.total_pages == 0
        assert space.all_pages().size == 0


class TestScanFrom:
    """The demotion scan's cursor semantics (paper Fig. 7)."""

    @pytest.fixture
    def space(self) -> AddressSpace:
        s = AddressSpace()
        s.map_region(10)
        s.map_region(10)
        return s

    def test_basic_scan(self, space):
        pages, resume = space.scan_from(0, 5)
        assert np.array_equal(pages, [0, 1, 2, 3, 4])
        assert resume == 5

    def test_resume_continues(self, space):
        __, resume = space.scan_from(0, 5)
        pages, __ = space.scan_from(resume, 5)
        assert np.array_equal(pages, [5, 6, 7, 8, 9])

    def test_crosses_region_boundary(self, space):
        pages, resume = space.scan_from(8, 4)
        assert np.array_equal(pages, [8, 9, 10, 11])
        assert resume == 12

    def test_wraps_around(self, space):
        pages, resume = space.scan_from(18, 4)
        assert np.array_equal(pages, [18, 19, 0, 1])
        assert resume == 2

    def test_full_wrap_covers_everything_once(self, space):
        pages, resume = space.scan_from(7, 20)
        assert len(pages) == 20
        assert len(np.unique(pages)) == 20
        # Cursor ends right where it started (one full lap).
        assert resume == 7

    def test_count_capped_at_total(self, space):
        pages, __ = space.scan_from(0, 100)
        assert len(pages) == 20

    def test_zero_count(self, space):
        pages, resume = space.scan_from(3, 0)
        assert pages.size == 0
        assert resume == 3

    def test_empty_space_scan(self):
        space = AddressSpace()
        pages, resume = space.scan_from(0, 10)
        assert pages.size == 0

    def test_resume_at_end_wraps_to_zero(self, space):
        __, resume = space.scan_from(15, 5)
        assert resume == 0
