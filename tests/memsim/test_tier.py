"""Tests for memory tier specs (paper Fig. 8)."""

import pytest

from repro.memsim.tier import (
    CXL1_CONFIG,
    CXL1_MEMORY,
    CXL2_CONFIG,
    CXL2_MEMORY,
    LOCAL_DRAM,
    TieredMemoryConfig,
    TierSpec,
)


class TestTierSpec:
    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            TierSpec(name="x", latency_ns=0, bandwidth_gbps=10)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            TierSpec(name="x", latency_ns=100, bandwidth_gbps=-1)

    def test_bandwidth_unit_conversion(self):
        spec = TierSpec(name="x", latency_ns=100, bandwidth_gbps=40)
        # 1 GB/s == 1 byte/ns.
        assert spec.bandwidth_bytes_per_ns == 40

    def test_frozen(self):
        with pytest.raises(AttributeError):
            LOCAL_DRAM.latency_ns = 1  # type: ignore[misc]


class TestPaperNumbers:
    """The presets must match the paper's Fig. 8 characterization."""

    def test_cxl_latency_adder_in_paper_range(self):
        # Paper Fig. 1/8: CXL adds ~50-100+ ns over local DRAM.
        adder1 = CXL1_MEMORY.latency_ns - LOCAL_DRAM.latency_ns
        assert 50 <= adder1 <= 150
        adder2 = CXL2_MEMORY.latency_ns - LOCAL_DRAM.latency_ns
        assert adder2 > adder1

    def test_cxl1_bandwidth_fraction(self):
        # Paper: CXL devices reach 20-70% of local DRAM bandwidth.
        assert 0.2 <= CXL1_CONFIG.bandwidth_fraction <= 0.7

    def test_cxl2_is_low_bandwidth(self):
        # CXL-2 is the single-channel slow device.
        assert CXL2_CONFIG.bandwidth_fraction < 0.1
        assert CXL2_MEMORY.bandwidth_gbps < CXL1_MEMORY.bandwidth_gbps

    def test_latency_ratio(self):
        assert CXL1_CONFIG.latency_ratio > 1.5
        assert CXL2_CONFIG.latency_ratio > CXL1_CONFIG.latency_ratio


class TestTieredMemoryConfig:
    def test_custom_config(self):
        cfg = TieredMemoryConfig(
            name="t",
            local=TierSpec("l", 100, 80),
            cxl=TierSpec("c", 300, 20),
        )
        assert cfg.latency_ratio == 3.0
        assert cfg.bandwidth_fraction == 0.25
