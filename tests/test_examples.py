"""Smoke checks for the example scripts.

Each example is imported (not executed -- they only run under
``__main__``) so that API drift in the library breaks the suite, not a
user's first session.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{path.name} must define main()"
    assert callable(module.main)


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "graph_analytics",
        "churn_adaptation",
        "capacity_planning",
        "custom_policy",
        "multihost_pooling",
    } <= names
