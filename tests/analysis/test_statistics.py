"""Tests for replication statistics."""

import pytest

from repro.analysis.statistics import (
    ReplicatedMetric,
    hit_ratio_rse,
    replicated_metric,
    run_replicated,
    throughput_rse,
)
from repro.core.config import ExperimentConfig
from repro.policies.freqtier import FreqTier, FreqTierConfig
from repro.policies.static_policy import StaticNoMigration
from repro.workloads.trace import SyntheticZipfWorkload


class TestReplicatedMetric:
    def test_mean_std(self):
        m = ReplicatedMetric("x", (1.0, 2.0, 3.0))
        assert m.mean == 2.0
        assert m.std == pytest.approx(1.0)
        assert m.standard_error == pytest.approx(1.0 / 3**0.5)

    def test_rse(self):
        m = ReplicatedMetric("x", (10.0, 10.0, 10.0))
        assert m.relative_standard_error == 0.0

    def test_single_value(self):
        m = ReplicatedMetric("x", (5.0,))
        assert m.std == 0.0
        assert m.relative_standard_error == 0.0

    def test_zero_mean(self):
        m = ReplicatedMetric("x", (-1.0, 1.0))
        assert m.relative_standard_error == 0.0

    def test_summary_format(self):
        s = ReplicatedMetric("hit", (0.9, 0.91)).summary()
        assert "hit" in s
        assert "n=2" in s


class TestRunReplicated:
    @pytest.fixture(scope="class")
    def replicated(self):
        # FreqTier converges to the hot set regardless of where the
        # seed's permutation scattered it, so replications agree; a
        # static policy's hit ratio would be permutation luck.
        config = ExperimentConfig(local_fraction=0.1, max_batches=50, seed=0)
        return run_replicated(
            lambda seed: SyntheticZipfWorkload(
                num_pages=1500, accesses_per_batch=4000, seed=seed
            ),
            lambda seed: FreqTier(
                config=FreqTierConfig(
                    sample_batch_size=500,
                    pebs_base_period=4,
                    window_accesses=60_000,
                ),
                seed=seed,
            ),
            config,
            seeds=[1, 2, 3],
        )

    def test_one_result_per_seed(self, replicated):
        assert len(replicated) == 3

    def test_seeds_produce_variation(self, replicated):
        hits = {round(r.steady_hit_ratio, 9) for r in replicated}
        assert len(hits) > 1

    def test_rse_is_small_for_stable_metric(self, replicated):
        """Replication noise across seeds is small -- the analogue of
        the paper's <1% relative standard errors."""
        metric = hit_ratio_rse(replicated)
        assert metric.relative_standard_error < 0.05
        thr = throughput_rse(replicated)
        assert thr.relative_standard_error < 0.05

    def test_empty_seeds_rejected(self):
        config = ExperimentConfig(local_fraction=0.1, max_batches=2)
        with pytest.raises(ValueError):
            run_replicated(
                lambda s: SyntheticZipfWorkload(num_pages=100),
                lambda s: StaticNoMigration(),
                config,
                seeds=[],
            )

    def test_missing_metric_rejected(self, replicated):
        with pytest.raises(ValueError):
            replicated_metric(replicated, lambda r: None, name="ghost")
