"""Tests for table formatting."""

from repro.analysis.tables import format_comparison_table, format_rows
from repro.core.metrics import BatchRecord, ExperimentResult


def make_result(duration: float) -> ExperimentResult:
    records = [
        BatchRecord(
            start_ns=i * duration,
            duration_ns=duration,
            num_ops=10.0,
            num_accesses=100,
            local_accesses=90,
            cxl_accesses=10,
            pages_migrated=0,
            overhead_ns=0.0,
        )
        for i in range(4)
    ]
    return ExperimentResult.from_records(
        records, "p", "w", {"local": 1.0, "cxl": 0.0, "migration": 0.0}, 0
    )


class TestFormatRows:
    def test_aligned_output(self):
        out = format_rows(["a", "bb"], [[1, 2.5], ["xyz", None]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "xyz" in lines[3]
        assert "-" in lines[3]  # None rendered as dash

    def test_float_formatting(self):
        out = format_rows(["v"], [[0.123456]])
        assert "0.123" in out


class TestComparisonTable:
    def test_renders_relative_column(self):
        results = {
            "AllLocal": make_result(100.0),
            "Slow": make_result(200.0),
        }
        out = format_comparison_table(results)
        assert "Slow" in out
        assert "50.0%" in out

    def test_missing_baseline_ok(self):
        out = format_comparison_table({"Only": make_result(10.0)})
        assert "Only" in out
