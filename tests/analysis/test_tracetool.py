"""Tests for trace-file validation, summaries and timelines."""

import json

from repro.analysis.tracetool import (
    adaptation_latencies_ns,
    format_trace_summary,
    hit_ratio_series,
    read_events,
    state_timeline,
    summarize_trace,
    validate_trace,
)
from repro.obs import JsonlTraceSink, ListSink, Tracer


def transition(tracer, t_ns, frm, to, reason, level):
    tracer.emit(
        "state_transition",
        t_ns=t_ns,
        **{"from": frm, "to": to, "reason": reason, "level": level},
    )


def adaptation_events() -> list[dict]:
    """A small trace: sample -> monitor -> resume, with level moves."""
    sink = ListSink()
    tracer = Tracer(sinks=[sink])
    transition(tracer, 0.0, "init", "sampling", "attach", "HIGH")
    tracer.emit(
        "level_change",
        t_ns=100.0,
        **{"from": "HIGH", "to": "MEDIUM", "reason": "stable"},
    )
    transition(tracer, 200.0, "sampling", "monitoring", "promotion-plateau", "OFF")
    tracer.emit(
        "window_close",
        t_ns=250.0,
        hit_ratio=0.9,
        pages_promoted=0,
        processing_rounds=0,
        state="monitoring",
        level="OFF",
    )
    transition(tracer, 500.0, "monitoring", "sampling", "distribution-change", "HIGH")
    tracer.emit("promotion", t_ns=600.0, candidates=10, promoted=7, threshold=5)
    tracer.emit("aging", t_ns=700.0, samples=100)
    tracer.emit("ring_overflow", t_ns=800.0, lost=42, reason="capacity")
    return sink.events


class TestReadAndValidate:
    def test_round_trip_through_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            for e in adaptation_events():
                sink.write(e)
        assert read_events(path) == adaptation_events()

    def test_validate_accepts_real_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            for e in adaptation_events():
                sink.write(e)
        result = validate_trace(path)
        assert result.ok
        assert result.num_lines == len(adaptation_events())

    def test_validate_flags_bad_lines_with_numbers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            json.dumps({"type": "aging", "t_ns": 0.0, "seq": 0, "samples": 1}),
            "{not json",
            json.dumps({"type": "aging", "t_ns": 1.0, "seq": 1}),  # no samples
            json.dumps({"type": "nope", "t_ns": 2.0, "seq": 2}),
        ]
        path.write_text("\n".join(lines) + "\n")
        result = validate_trace(path)
        assert not result.ok
        assert [lineno for lineno, __ in result.errors] == [2, 3, 4]
        assert len(result.events) == 1
        assert result.num_lines == 4

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n"
            + json.dumps({"type": "aging", "t_ns": 0.0, "seq": 0, "samples": 1})
            + "\n\n"
        )
        result = validate_trace(path)
        assert result.ok
        assert result.num_lines == 1


class TestStateTimeline:
    def test_segments_follow_transitions(self):
        segments = state_timeline(adaptation_events())
        assert [(s.state, s.level) for s in segments] == [
            ("sampling", "HIGH"),
            ("sampling", "MEDIUM"),
            ("monitoring", "OFF"),
            ("sampling", "HIGH"),
        ]
        assert [s.start_ns for s in segments] == [0.0, 100.0, 200.0, 500.0]
        # Each segment closes where the next opens; the last stays open.
        assert [s.end_ns for s in segments] == [100.0, 200.0, 500.0, None]

    def test_reasons_preserved(self):
        segments = state_timeline(adaptation_events())
        assert segments[2].reason == "promotion-plateau"
        assert segments[3].reason == "distribution-change"

    def test_empty_trace_yields_empty_timeline(self):
        assert state_timeline([]) == []

    def test_ordering_by_seq_not_list_position(self):
        events = adaptation_events()
        segments = state_timeline(list(reversed(events)))
        assert [s.start_ns for s in segments] == [0.0, 100.0, 200.0, 500.0]


class TestAdaptationLatencies:
    def test_monitoring_to_resume_delay(self):
        assert adaptation_latencies_ns(adaptation_events()) == [300.0]

    def test_unresumed_monitoring_entry_not_counted(self):
        events = [
            e
            for e in adaptation_events()
            if not (
                e["type"] == "state_transition"
                and e.get("reason") == "distribution-change"
            )
        ]
        assert adaptation_latencies_ns(events) == []


class TestSummaries:
    def test_summarize_headline_numbers(self):
        summary = summarize_trace(adaptation_events())
        assert summary["num_events"] == 8
        assert summary["event_counts"]["state_transition"] == 3
        assert summary["span_ns"] == 800.0
        assert summary["pages_promoted"] == 7
        assert summary["promotion_passes"] == 1
        assert summary["samples_lost"] == 42
        assert summary["agings"] == 1
        assert summary["adaptation_latencies_ns"] == [300.0]
        assert summary["hit_ratio_series"] == [(250.0, 0.9)]
        assert len(summary["timeline"]) == 4

    def test_hit_ratio_series_skips_none(self):
        sink = ListSink()
        tracer = Tracer(sinks=[sink])
        tracer.emit(
            "window_close",
            t_ns=1.0,
            hit_ratio=None,
            pages_promoted=0,
            processing_rounds=0,
            state="sampling",
            level="HIGH",
        )
        assert hit_ratio_series(sink.events) == []

    def test_format_is_human_readable(self):
        text = format_trace_summary(summarize_trace(adaptation_events()))
        assert "state/level timeline" in text
        assert "monitoring" in text
        assert "promotion passes: 1 (7 pages promoted)" in text

    def test_empty_trace_summary(self):
        summary = summarize_trace([])
        assert summary["num_events"] == 0
        assert summary["span_ns"] == 0.0
        format_trace_summary(summary)  # must not raise


class TestTruncatedTail:
    """A crash mid-write with a durable sink tears at most the final
    line; validation tolerates exactly that artifact."""

    @staticmethod
    def _valid_line(seq: int = 0) -> str:
        return json.dumps(
            {"type": "aging", "t_ns": 0.0, "seq": seq, "samples": 1}
        )

    def test_torn_final_line_without_newline_is_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(self._valid_line() + "\n" + '{"type": "aging", "t_n')
        result = validate_trace(path)
        assert result.ok
        assert result.truncated_tail
        assert len(result.events) == 1

    def test_complete_final_garbage_line_is_still_an_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(self._valid_line() + "\n{torn}\n")
        result = validate_trace(path)
        assert not result.ok
        assert not result.truncated_tail

    def test_mid_file_bad_json_is_still_an_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("{torn\n" + self._valid_line() + "\n")
        result = validate_trace(path)
        assert not result.ok
        assert [lineno for lineno, __ in result.errors] == [1]
