"""Tests for the text chart helpers."""

from repro.analysis.charts import hbar_chart, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([0.1, 0.5, 0.9])) == 3

    def test_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_flat_series(self):
        assert sparkline([0.5, 0.5]) == "@@"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        line = sparkline([0.5], lo=0.0, hi=1.0)
        assert line in "=+"  # mid-scale glyph


class TestHBarChart:
    def test_rows_and_labels(self):
        out = hbar_chart([("alpha", 1.0), ("b", 0.5)])
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("alpha")
        # Longest bar belongs to the max value.
        assert lines[0].count("#") > lines[1].count("#")

    def test_value_formatting(self):
        out = hbar_chart([("x", 0.42)], fmt="{:.0%}")
        assert "42%" in out

    def test_empty(self):
        assert hbar_chart([]) == ""

    def test_zero_values(self):
        out = hbar_chart([("x", 0.0)])
        assert "#" not in out
