"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import markdown_report
from repro.core.metrics import BatchRecord, ExperimentResult


def make_result(duration: float, hit: float = 0.9) -> ExperimentResult:
    local = int(100 * hit)
    records = [
        BatchRecord(
            start_ns=i * duration,
            duration_ns=duration,
            num_ops=10.0,
            num_accesses=100,
            local_accesses=local,
            cxl_accesses=100 - local,
            pages_migrated=2,
            overhead_ns=50.0,
        )
        for i in range(4)
    ]
    return ExperimentResult.from_records(
        records,
        "p",
        "w",
        {"local": 0.8, "cxl": 0.15, "migration": 0.05},
        migration_bytes=1000,
        policy_stats={"promotions": 5, "demotions": 3, "overhead_ns": 200.0,
                      "metadata_bytes": 2048},
    )


class TestMarkdownReport:
    def test_contains_all_sections(self):
        report = markdown_report(
            {"AllLocal": make_result(100.0, 1.0), "FreqTier": make_result(120.0)}
        )
        assert "# Tiering comparison" in report
        assert "## Traffic breakdown" in report
        assert "## Hit-ratio timelines" in report
        assert "## Policy internals" in report
        assert "FreqTier" in report

    def test_relative_column_present(self):
        report = markdown_report(
            {"AllLocal": make_result(100.0, 1.0), "Slow": make_result(200.0)}
        )
        # Slow at half throughput of baseline.
        assert "50.0%" in report

    def test_baseline_row_has_dash_relative(self):
        report = markdown_report({"AllLocal": make_result(100.0, 1.0)})
        rows = [l for l in report.splitlines() if l.startswith("| AllLocal")]
        assert any("| - |" in r for r in rows)

    def test_custom_title(self):
        report = markdown_report(
            {"X": make_result(10.0)}, title="CDN at 1:32"
        )
        assert report.startswith("# CDN at 1:32")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            markdown_report({})

    def test_is_valid_markdown_table(self):
        report = markdown_report({"X": make_result(10.0)})
        table_lines = [l for l in report.splitlines() if l.startswith("|")]
        widths = {l.count("|") for l in table_lines[:2]}
        assert len(widths) == 1  # header and rule align
