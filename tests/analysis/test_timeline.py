"""Tests for timeline analysis utilities (Fig. 11 support)."""

import pytest

from repro.analysis.timeline import (
    detection_delay,
    resample_timeline,
    timeline_stability,
)


class TestResample:
    def test_reduces_to_requested_points(self):
        timeline = [(float(i), float(i % 10)) for i in range(1000)]
        out = resample_timeline(timeline, num_points=10)
        assert len(out) == 10

    def test_preserves_means(self):
        timeline = [(float(i), 5.0) for i in range(100)]
        out = resample_timeline(timeline, num_points=4)
        assert all(v == pytest.approx(5.0) for __, v in out)

    def test_empty(self):
        assert resample_timeline([], 5) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            resample_timeline([(0.0, 1.0)], 0)


class TestStability:
    def test_flat_series_is_stable(self):
        timeline = [(float(i), 0.9) for i in range(10)]
        assert timeline_stability(timeline) == 0.0

    def test_spread_measured_over_window(self):
        timeline = [(0.0, 0.1), (1.0, 0.9), (2.0, 0.5), (3.0, 0.5)]
        assert timeline_stability(timeline, window=2) == 0.0
        assert timeline_stability(timeline, window=4) == pytest.approx(0.8)

    def test_short_series(self):
        assert timeline_stability([(0.0, 1.0)]) == 0.0


class TestDetectionDelay:
    def test_finds_recovery_point(self):
        timeline = [(0.0, 0.9), (10.0, 0.3), (20.0, 0.5), (30.0, 0.85)]
        delay = detection_delay(timeline, change_time_ns=10.0, recovery_value=0.8)
        assert delay == pytest.approx(20.0)

    def test_never_recovers(self):
        timeline = [(0.0, 0.9), (10.0, 0.3)]
        assert detection_delay(timeline, 5.0, 0.99) is None
