"""Tests for frequency-distribution analysis (Fig. 14)."""

import numpy as np
import pytest

from repro.analysis.distributions import frequency_cdf, saturated_fraction
from repro.cbf.cbf import CountingBloomFilter


def make_cbf_with(freqs: dict[int, int]) -> CountingBloomFilter:
    cbf = CountingBloomFilter(num_counters=65_536, num_hashes=3, bits=4, seed=0)
    page = 0
    for freq, count in freqs.items():
        pages = np.arange(page, page + count, dtype=np.uint64)
        cbf.increase(pages, freq)
        page += count
    return cbf


class TestFrequencyCDF:
    def test_cdf_monotone_and_normalized(self):
        cbf = make_cbf_with({1: 100, 5: 50, 15: 10})
        cdf = frequency_cdf(cbf)
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_empty_filter(self):
        cbf = CountingBloomFilter(1024)
        assert np.all(frequency_cdf(cbf) == 0.0)

    def test_skip_zero_excludes_untouched(self):
        cbf = make_cbf_with({15: 10})
        cdf = frequency_cdf(cbf, skip_zero=True)
        # All tracked mass is at 15: CDF below 15 is ~0.
        assert cdf[14] < 0.05

    def test_include_zero(self):
        cbf = make_cbf_with({15: 10})
        cdf = frequency_cdf(cbf, skip_zero=False)
        # Untouched counters dominate.
        assert cdf[0] > 0.99


class TestSaturatedFraction:
    def test_matches_construction(self):
        cbf = make_cbf_with({1: 980, 15: 20})
        frac = saturated_fraction(cbf)
        # ~20 of ~1000 tracked pages saturate (x3 counters each).
        assert frac == pytest.approx(0.02, abs=0.01)

    def test_paper_criterion_on_zipf(self):
        """Paper Fig. 14: under a Zipf workload <2% of pages saturate
        a 4-bit counter after moderate sampling."""
        from repro.workloads.zipfian import ZipfianSampler

        cbf = CountingBloomFilter(num_counters=262_144, num_hashes=3, bits=4, seed=1)
        z = ZipfianSampler(50_000, 1.1, seed=2)
        samples = z.sample(100_000).astype(np.uint64)
        uniq, counts = np.unique(samples, return_counts=True)
        cbf.increase(uniq, counts)
        assert saturated_fraction(cbf) < 0.05

    def test_empty(self):
        assert saturated_fraction(CountingBloomFilter(64)) == 0.0
