"""Tests for oracle placement analysis."""

import numpy as np
import pytest

from repro.analysis.oracle import (
    oracle_hit_curve,
    oracle_hit_ratio,
    page_access_counts,
    placement_efficiency,
)
from repro.sampling.events import AccessBatch


def batch_of(pages) -> AccessBatch:
    return AccessBatch(page_ids=np.asarray(pages), num_ops=1.0, cpu_ns=0.0)


class TestCounts:
    def test_counts(self):
        batches = [batch_of([0, 0, 1]), batch_of([0, 2])]
        counts = page_access_counts(batches, 4)
        assert np.array_equal(counts, [3, 1, 1, 0])


class TestOracleHitRatio:
    def test_exact_on_known_distribution(self):
        # Page 0: 6 accesses, page 1: 3, page 2: 1.
        batches = [batch_of([0] * 6 + [1] * 3 + [2])]
        assert oracle_hit_ratio(batches, 3, 1) == pytest.approx(0.6)
        assert oracle_hit_ratio(batches, 3, 2) == pytest.approx(0.9)
        assert oracle_hit_ratio(batches, 3, 3) == pytest.approx(1.0)

    def test_capacity_beyond_footprint(self):
        batches = [batch_of([0, 1])]
        assert oracle_hit_ratio(batches, 2, 100) == pytest.approx(1.0)

    def test_zero_capacity(self):
        assert oracle_hit_ratio([batch_of([0])], 1, 0) == 0.0

    def test_empty_stream(self):
        assert oracle_hit_ratio([], 10, 5) == 0.0

    def test_curve_matches_pointwise(self):
        rng = np.random.default_rng(0)
        batches = [batch_of(rng.integers(0, 100, 1000)) for __ in range(3)]
        curve = oracle_hit_curve(batches, 100, [5, 20, 50])
        for cap, value in curve.items():
            assert value == pytest.approx(oracle_hit_ratio(batches, 100, cap))

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        batches = [batch_of(rng.integers(0, 50, 500))]
        curve = oracle_hit_curve(batches, 50, [1, 5, 10, 25, 50])
        values = list(curve.values())
        assert values == sorted(values)


class TestEfficiency:
    def test_basic(self):
        assert placement_efficiency(0.45, 0.9) == pytest.approx(0.5)

    def test_capped_at_one(self):
        assert placement_efficiency(0.95, 0.9) == 1.0

    def test_zero_oracle(self):
        assert placement_efficiency(0.0, 0.0) == 1.0


class TestAgainstZipfTheory:
    def test_oracle_matches_zipf_mass(self):
        """The oracle over a Zipf stream equals the top-K access mass."""
        from repro.workloads.zipfian import ZipfianSampler

        z = ZipfianSampler(1000, 1.2, seed=3)
        batches = [batch_of(z.sample(50_000)) for __ in range(4)]
        oracle = oracle_hit_ratio(batches, 1000, 100)
        theoretical = z.mass_of_top_fraction(0.1)
        assert oracle == pytest.approx(theoretical, abs=0.03)
