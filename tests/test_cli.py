"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestList:
    def test_lists_registries(self, capsys):
        out = run_cli(capsys, "list")
        assert "freqtier" in out
        assert "cdn" in out
        assert "gap-bfs" in out

    def test_json_output(self, capsys):
        out = run_cli(capsys, "list", "--json")
        data = json.loads(out)
        assert "autonuma" in data["policies"]
        assert "xgboost" in data["workloads"]


class TestRun:
    def test_basic_run(self, capsys):
        out = run_cli(
            capsys,
            "run",
            "--workload",
            "zipf",
            "--policy",
            "freqtier",
            "--batches",
            "10",
            "--local-fraction",
            "0.1",
        )
        assert "hit_ratio" in out

    def test_json_run_with_baseline(self, capsys):
        out = run_cli(
            capsys,
            "run",
            "--workload",
            "zipf",
            "--policy",
            "static",
            "--batches",
            "5",
            "--baseline",
            "--json",
        )
        data = json.loads(out)
        assert data["policy"] == "Static"
        assert 0.0 < data["pct_all_local_throughput"] <= 1.001

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--workload",
                    "zipf",
                    "--policy",
                    "nope",
                    "--batches",
                    "2",
                ]
            )

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--workload",
                    "nope",
                    "--policy",
                    "static",
                    "--batches",
                    "2",
                ]
            )

    def test_cxl2_flag(self, capsys):
        out = run_cli(
            capsys,
            "run",
            "--workload",
            "zipf",
            "--policy",
            "static",
            "--batches",
            "5",
            "--cxl",
            "2",
            "--json",
        )
        assert json.loads(out)["workload"] == "synthetic-zipf"


class TestCompare:
    def test_default_lineup(self, capsys):
        out = run_cli(
            capsys,
            "compare",
            "--workload",
            "zipf",
            "--batches",
            "8",
            "--policies",
            "freqtier,static",
        )
        assert "AllLocal" in out
        assert "freqtier" in out
        assert "static" in out

    def test_json(self, capsys):
        out = run_cli(
            capsys,
            "compare",
            "--workload",
            "zipf",
            "--batches",
            "5",
            "--policies",
            "static",
            "--json",
        )
        data = json.loads(out)
        assert set(data) == {"AllLocal", "static"}


class TestSweep:
    def test_sweep_rows(self, capsys):
        out = run_cli(
            capsys,
            "sweep",
            "--workload",
            "zipf",
            "--policy",
            "static",
            "--batches",
            "5",
            "--fractions",
            "0.05,0.2",
        )
        assert "5.00%" in out
        assert "20.00%" in out


class TestCompareReport:
    def test_report_written(self, capsys, tmp_path):
        report_path = tmp_path / "report.md"
        run_cli(
            capsys,
            "compare",
            "--workload",
            "zipf",
            "--batches",
            "5",
            "--policies",
            "static",
            "--report",
            str(report_path),
        )
        text = report_path.read_text()
        assert "# zipf @" in text
        assert "## Traffic breakdown" in text


class TestRecordReplay:
    def test_record_then_replay(self, capsys, tmp_path):
        trace_path = str(tmp_path / "t.npz")
        out = run_cli(
            capsys,
            "record",
            "--workload",
            "zipf",
            "--batches",
            "4",
            "--out",
            trace_path,
            "--json",
        )
        rec = json.loads(out)
        assert rec["batches"] == 4

        out = run_cli(
            capsys,
            "replay",
            "--trace",
            trace_path,
            "--policy",
            "static",
            "--json",
        )
        data = json.loads(out)
        assert data["workload"].startswith("trace:")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTracing:
    def run_traced(self, capsys, tmp_path) -> str:
        trace_path = str(tmp_path / "run.jsonl")
        run_cli(
            capsys,
            "run",
            "--workload",
            "zipf",
            "--policy",
            "freqtier",
            "--batches",
            "40",
            "--trace",
            trace_path,
        )
        return trace_path

    def test_run_trace_is_schema_valid(self, capsys, tmp_path):
        from repro.analysis.tracetool import validate_trace

        validation = validate_trace(self.run_traced(capsys, tmp_path))
        assert validation.ok
        assert validation.num_lines > 0
        types = {e["type"] for e in validation.events}
        assert "batch" in types
        assert "state_transition" in types
        assert "promotion" in types

    def test_trace_validate_subcommand(self, capsys, tmp_path):
        trace_path = self.run_traced(capsys, tmp_path)
        out = run_cli(capsys, "trace", "validate", trace_path)
        assert "OK" in out

    def test_trace_validate_fails_on_bad_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "nope", "t_ns": 0.0, "seq": 0}\n')
        assert main(["trace", "validate", str(bad)]) == 1

    def test_trace_summarize_subcommand(self, capsys, tmp_path):
        trace_path = self.run_traced(capsys, tmp_path)
        out = run_cli(capsys, "trace", "summarize", trace_path)
        assert "events:" in out
        assert "state/level timeline" in out

    def test_trace_summarize_json(self, capsys, tmp_path):
        trace_path = self.run_traced(capsys, tmp_path)
        out = run_cli(capsys, "trace", "summarize", trace_path, "--json")
        data = json.loads(out)
        assert data["num_events"] > 0
        assert data["event_counts"]["batch"] == 40

    def test_compare_writes_per_policy_traces(self, capsys, tmp_path):
        from repro.analysis.tracetool import validate_trace

        trace_dir = tmp_path / "traces"
        run_cli(
            capsys,
            "compare",
            "--workload",
            "zipf",
            "--batches",
            "5",
            "--policies",
            "freqtier,static",
            "--trace",
            str(trace_dir),
        )
        for name in ("AllLocal", "freqtier", "static"):
            validation = validate_trace(trace_dir / f"{name}.jsonl")
            assert validation.ok, name
            assert validation.num_lines > 0, name


class TestCheckpointCLI:
    def _run_json(self, capsys, *extra) -> dict:
        out = run_cli(
            capsys,
            "run",
            "--workload",
            "zipf",
            "--policy",
            "freqtier",
            "--local-fraction",
            "0.1",
            "--json",
            *extra,
        )
        return json.loads(out)

    def test_kill_resume_matches_uninterrupted_run(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ck")
        reference = self._run_json(capsys, "--batches", "30")
        # "Kill" after 14 batches (checkpoints at 5 and 10), then resume.
        self._run_json(
            capsys,
            "--batches",
            "14",
            "--checkpoint-dir",
            ckpt,
            "--checkpoint-every",
            "5",
        )
        resumed = self._run_json(
            capsys,
            "--batches",
            "30",
            "--checkpoint-dir",
            ckpt,
            "--checkpoint-every",
            "5",
            "--resume",
        )
        assert resumed == reference

    def test_checkpoint_inspect_reports_generations(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ck")
        self._run_json(
            capsys,
            "--batches",
            "10",
            "--checkpoint-dir",
            ckpt,
            "--checkpoint-every",
            "5",
        )
        out = run_cli(capsys, "checkpoint", "inspect", ckpt, "--json")
        data = json.loads(out)
        assert data["resumable"] is True
        assert len(data["generations"]) == 2
        assert all(g["valid"] for g in data["generations"])

    def test_inspect_missing_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["checkpoint", "inspect", str(tmp_path / "nope")])

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="checkpoint-dir"):
            main(
                [
                    "run",
                    "--workload",
                    "zipf",
                    "--policy",
                    "freqtier",
                    "--batches",
                    "5",
                    "--resume",
                ]
            )


class TestPartialFailureExitCodes:
    CRASH = '{"crash_after_batches": 3}'

    def _compare_argv(self, *extra) -> list:
        return [
            "compare",
            "--workload",
            "zipf",
            "--policies",
            "freqtier",
            "--batches",
            "8",
            "--keep-going",
            "--faults",
            self.CRASH,
            *extra,
        ]

    def test_compare_with_failed_cells_exits_1(self, capsys):
        assert main(self._compare_argv()) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_ok_on_partial_restores_exit_0(self, capsys):
        assert main(self._compare_argv("--ok-on-partial")) == 0

    def test_sweep_with_failed_cells_exits_1(self, capsys):
        argv = [
            "sweep",
            "--workload",
            "zipf",
            "--policy",
            "freqtier",
            "--fractions",
            "0.1",
            "--batches",
            "8",
            "--keep-going",
            "--faults",
            self.CRASH,
        ]
        assert main(argv) == 1
        assert main(argv + ["--ok-on-partial"]) == 0

    def test_fault_free_compare_still_exits_0(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--workload",
                    "zipf",
                    "--policies",
                    "static",
                    "--batches",
                    "5",
                ]
            )
            == 0
        )
