"""Tests for the CacheLib workload generator."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.workloads.cachelib import (
    CacheLibProfile,
    CacheLibWorkload,
    CDN_PROFILE,
    Phase,
    SOCIAL_PROFILE,
)


def machine_for(workload) -> Machine:
    m = Machine(
        MachineConfig(
            local_capacity_pages=max(64, workload.footprint_pages // 16),
            cxl_capacity_pages=workload.footprint_pages * 2,
        )
    )
    workload.setup(m)
    return m


class TestProfiles:
    def test_cdn_items_bigger_than_social(self):
        assert CDN_PROFILE.mean_item_pages > SOCIAL_PROFILE.mean_item_pages

    def test_social_more_skewed(self):
        assert SOCIAL_PROFILE.zipf_alpha > CDN_PROFILE.zipf_alpha

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            CacheLibProfile(
                name="bad",
                zipf_alpha=1.0,
                size_pages=(1, 2),
                size_probs=(0.5, 0.4),  # doesn't sum to 1
                get_fraction=0.9,
                read_pages_cap=1,
                cpu_ns_per_op=10.0,
            )
        with pytest.raises(ValueError):
            CacheLibProfile(
                name="bad",
                zipf_alpha=1.0,
                size_pages=(1,),
                size_probs=(1.0,),
                get_fraction=0.0,
                read_pages_cap=1,
                cpu_ns_per_op=10.0,
            )


class TestLayout:
    def test_items_fill_slab(self):
        w = CacheLibWorkload(CDN_PROFILE, slab_pages=4096, seed=0)
        assert w.num_items > 0
        assert w._used_slab_pages <= 4096
        # Items tile the slab contiguously.
        ends = w._item_start + w._item_pages
        assert np.array_equal(w._item_start[1:], ends[:-1])

    def test_footprint_includes_index(self):
        w = CacheLibWorkload(CDN_PROFILE, slab_pages=4096, seed=0)
        assert w.footprint_pages > w._used_slab_pages

    def test_too_small_slab_rejected(self):
        with pytest.raises(ValueError):
            CacheLibWorkload(CDN_PROFILE, slab_pages=10, seed=0)

    def test_setup_allocates_all_regions(self):
        w = CacheLibWorkload(SOCIAL_PROFILE, slab_pages=2048, seed=1)
        m = machine_for(w)
        assert m.address_space.total_pages == w.footprint_pages


class TestBatches:
    def test_batch_structure(self):
        w = CacheLibWorkload(CDN_PROFILE, slab_pages=4096, ops_per_batch=500, seed=2)
        machine_for(w)
        batch = next(iter(w.batches()))
        assert batch.num_ops == 500
        # Every op touches >= 1 index page + >= 1 item page.
        assert batch.num_accesses >= 1000
        assert batch.cpu_ns == 500 * CDN_PROFILE.cpu_ns_per_op
        assert batch.bytes_per_access == CDN_PROFILE.bytes_per_access

    def test_accesses_within_mapped_pages(self):
        w = CacheLibWorkload(CDN_PROFILE, slab_pages=2048, ops_per_batch=300, seed=3)
        machine_for(w)
        batch = next(iter(w.batches()))
        assert batch.page_ids.min() >= 0
        assert batch.page_ids.max() < w.footprint_pages

    def test_deterministic_given_seed(self):
        def first_batch(seed):
            w = CacheLibWorkload(
                CDN_PROFILE, slab_pages=2048, ops_per_batch=200, seed=seed
            )
            machine_for(w)
            return next(iter(w.batches())).page_ids

        assert np.array_equal(first_batch(7), first_batch(7))
        assert not np.array_equal(first_batch(7), first_batch(8))

    def test_access_skew_present(self):
        w = CacheLibWorkload(SOCIAL_PROFILE, slab_pages=4096, ops_per_batch=5000, seed=4)
        machine_for(w)
        batch = next(iter(w.batches()))
        counts = np.bincount(batch.page_ids, minlength=w.footprint_pages)
        top_pages = np.sort(counts)[::-1]
        top_5pct = top_pages[: len(top_pages) // 20].sum()
        assert top_5pct / counts.sum() > 0.5


class TestPhases:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase(0.5, 0.5)
        with pytest.raises(ValueError):
            Phase(-0.1, 0.5)

    def test_phase_shift_changes_item_range(self):
        """The Fig. 11 setup: accesses move to the other half of items."""
        plan = (Phase(0.0, 0.5, num_batches=3), Phase(0.5, 1.0, None))
        w = CacheLibWorkload(
            SOCIAL_PROFILE,
            slab_pages=4096,
            ops_per_batch=2000,
            phase_plan=plan,
            seed=5,
        )
        machine_for(w)
        gen = iter(w.batches())
        batches = [next(gen) for __ in range(6)]
        assert batches[0].label == "phase0"
        assert batches[3].label == "phase1"
        slab_lo = w._slab_start
        half_boundary = w._item_start[w.num_items // 2] + slab_lo
        p0_items = batches[0].page_ids[batches[0].page_ids >= slab_lo]
        p1_items = batches[4].page_ids[batches[4].page_ids >= slab_lo]
        # Phase 0 stays below the halfway item; phase 1 above.
        assert (p0_items < half_boundary).mean() > 0.99
        assert (p1_items >= half_boundary).mean() > 0.99

    def test_endless_single_phase(self):
        w = CacheLibWorkload(CDN_PROFILE, slab_pages=2048, ops_per_batch=100, seed=6)
        machine_for(w)
        gen = iter(w.batches())
        for __ in range(5):
            assert next(gen).label == "phase0"

    def test_describe(self):
        w = CacheLibWorkload(CDN_PROFILE, slab_pages=2048, seed=0)
        d = w.describe()
        assert d["profile"] == "cachelib-cdn"
        assert d["num_items"] == w.num_items
