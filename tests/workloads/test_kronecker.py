"""Tests for the Kronecker/R-MAT graph generator."""

import numpy as np
import pytest

from repro.workloads.kronecker import CSRGraph, generate_kronecker


class TestGeneration:
    def test_node_and_edge_counts(self):
        g = generate_kronecker(scale=10, avg_degree=4, seed=0)
        assert g.num_nodes == 1024
        # Symmetrized: 2 * n * degree directed entries.
        assert g.num_directed_edges == 2 * 1024 * 4

    def test_csr_well_formed(self):
        g = generate_kronecker(scale=8, avg_degree=4, seed=1)
        assert len(g.indptr) == g.num_nodes + 1
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.num_directed_edges
        assert np.all(np.diff(g.indptr) >= 0)
        assert g.indices.min() >= 0
        assert g.indices.max() < g.num_nodes

    def test_deterministic(self):
        a = generate_kronecker(scale=8, seed=3)
        b = generate_kronecker(scale=8, seed=3)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_changes_graph(self):
        a = generate_kronecker(scale=8, seed=3)
        b = generate_kronecker(scale=8, seed=4)
        assert not np.array_equal(a.indices, b.indices)

    def test_symmetry(self):
        """Every edge appears in both directions (same multiplicity)."""
        g = generate_kronecker(scale=6, avg_degree=3, seed=5)
        src = np.repeat(np.arange(g.num_nodes), np.diff(g.indptr))
        fwd = sorted(zip(src.tolist(), g.indices.tolist()))
        rev = sorted(zip(g.indices.tolist(), src.tolist()))
        assert fwd == rev

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_kronecker(scale=0)
        with pytest.raises(ValueError):
            generate_kronecker(scale=31)
        with pytest.raises(ValueError):
            generate_kronecker(scale=5, avg_degree=0)


class TestPowerLaw:
    def test_degree_skew(self):
        """R-MAT with GAP parameters produces hubs (paper Section II-B)."""
        g = generate_kronecker(scale=14, avg_degree=4, seed=0)
        degrees = np.sort(g.degrees())[::-1]
        total = degrees.sum()
        top_1pct = degrees[: g.num_nodes // 100].sum()
        assert top_1pct / total > 0.2  # hubs dominate

    def test_isolated_nodes_exist(self):
        # Kronecker graphs famously leave many nodes isolated.
        g = generate_kronecker(scale=14, avg_degree=4, seed=0)
        assert np.sum(g.degrees() == 0) > 0


class TestCSRGraphHelpers:
    def test_neighbors(self):
        indptr = np.array([0, 2, 3, 3])
        indices = np.array([1, 2, 0], dtype=np.int32)
        g = CSRGraph(indptr=indptr, indices=indices, num_nodes=3)
        assert np.array_equal(g.neighbors(0), [1, 2])
        assert g.degree(1) == 1
        assert g.degree(2) == 0

    def test_nbytes(self):
        g = generate_kronecker(scale=8, seed=0)
        assert g.nbytes == g.indptr.nbytes + g.indices.nbytes
