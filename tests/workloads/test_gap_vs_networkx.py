"""Verify the GAP kernels against networkx ground truth.

The trace generators execute *real* kernels; these tests check the
computed results (not just the traces) against networkx on small
Kronecker graphs, so trace realism rests on correct algorithms.
"""

import networkx as nx
import numpy as np

from repro.memsim.machine import Machine, MachineConfig
from repro.workloads.gap import GapWorkload


def to_networkx(graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_nodes))
    src = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
    g.add_edges_from(zip(src.tolist(), graph.indices.tolist()))
    return g


def run_kernel(kernel: str, scale: int = 9, seed: int = 5) -> GapWorkload:
    workload = GapWorkload(kernel, scale=scale, num_trials=1, seed=seed)
    machine = Machine(
        MachineConfig(
            local_capacity_pages=workload.footprint_pages + 8,
            cxl_capacity_pages=8,
        )
    )
    workload.setup(machine)
    for __ in workload.batches():
        pass
    return workload


class TestBFSCorrectness:
    def test_reachability_matches_networkx(self):
        workload = run_kernel("bfs")
        state = workload.last_kernel_state
        parent = state["parent"]
        source = int(state["source"][0])
        nxg = to_networkx(workload.graph)
        reachable = set(nx.node_connected_component(nxg, source))
        visited = set(np.nonzero(parent >= 0)[0].tolist())
        assert visited == reachable


class TestCCCorrectness:
    def test_components_match_networkx(self):
        workload = run_kernel("cc")
        comp = workload.last_kernel_state["comp"]
        nxg = to_networkx(workload.graph)
        # Same number of components over non-isolated structure.
        ours = len(np.unique(comp))
        theirs = nx.number_connected_components(nxg)
        assert ours == theirs
        # And co-membership agrees: two nodes share our label iff they
        # share a networkx component (checked on a sample).
        rng = np.random.default_rng(0)
        nodes = rng.integers(0, workload.graph.num_nodes, 300)
        label_of = {}
        for c_idx, members in enumerate(nx.connected_components(nxg)):
            for m in members:
                label_of[m] = c_idx
        for a, b in zip(nodes[:-1], nodes[1:]):
            same_ours = comp[a] == comp[b]
            same_theirs = label_of[int(a)] == label_of[int(b)]
            assert same_ours == same_theirs


class TestBCCorrectness:
    def test_shortest_path_counts_match(self):
        workload = run_kernel("bc")
        state = workload.last_kernel_state
        sigma = state["sigma"]
        level = state["level"]
        source = int(state["source"][0])
        nxg = to_networkx(workload.graph)
        lengths = nx.single_source_shortest_path_length(nxg, source)
        # Levels agree with true shortest-path distances.
        for node, dist in list(lengths.items())[:500]:
            assert level[node] == dist, node
        # Unreached nodes have level -1.
        unreached = set(range(workload.graph.num_nodes)) - set(lengths)
        for node in list(unreached)[:100]:
            assert level[node] == -1

    def test_sigma_positive_on_reached(self):
        workload = run_kernel("bc")
        state = workload.last_kernel_state
        reached = state["level"] >= 0
        assert np.all(state["sigma"][reached] > 0)


class TestPageRankCorrectness:
    def test_matches_networkx_pagerank(self):
        workload = run_kernel("pr")
        rank = workload.last_kernel_state["rank"]
        # Build the same *multigraph* semantics our kernel uses
        # (parallel edges count), so compare against a manual power
        # iteration on the CSR instead of nx.pagerank's dict-graph.
        graph = workload.graph
        n = graph.num_nodes
        degrees = np.maximum(np.diff(graph.indptr).astype(float), 1.0)
        src = np.repeat(np.arange(n), np.diff(graph.indptr))
        reference = np.full(n, 1.0 / n)
        for __ in range(10):
            contrib = reference[src] / degrees[src]
            incoming = np.zeros(n)
            np.add.at(incoming, graph.indices.astype(np.int64), contrib)
            reference = (1 - 0.85) / n + 0.85 * incoming
        assert np.allclose(rank, reference)

    def test_rank_correlates_with_degree(self):
        """Power-law graphs: hubs accumulate rank."""
        workload = run_kernel("pr", scale=10)
        rank = workload.last_kernel_state["rank"]
        degrees = workload.graph.degrees()
        top_by_degree = np.argsort(degrees)[-10:]
        assert rank[top_by_degree].mean() > rank.mean() * 3

    def test_pr_emits_batches(self):
        from repro.workloads.gap import PR_ITERATIONS

        workload = GapWorkload("pr", scale=8, num_trials=2, seed=1)
        machine = Machine(
            MachineConfig(
                local_capacity_pages=workload.footprint_pages + 8,
                cxl_capacity_pages=8,
            )
        )
        workload.setup(machine)
        batches = list(workload.batches())
        assert len(batches) == 2 * PR_ITERATIONS
