"""Tests for trace persistence and replay."""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.runner import run_experiment
from repro.memsim.machine import Machine, MachineConfig
from repro.policies.static_policy import StaticNoMigration
from repro.workloads.trace import SyntheticZipfWorkload
from repro.workloads.traceio import TraceFileWorkload, save_trace


@pytest.fixture
def saved_trace(tmp_path):
    workload = SyntheticZipfWorkload(
        num_pages=1000, accesses_per_batch=500, seed=7
    )
    machine = Machine(
        MachineConfig(local_capacity_pages=100, cxl_capacity_pages=2000)
    )
    workload.setup(machine)
    path = tmp_path / "trace.npz"
    count = save_trace(path, workload.batches(), 1000, max_batches=6)
    assert count == 6
    return path, workload


class TestSaveLoad:
    def test_roundtrip_identical(self, saved_trace):
        path, original = saved_trace
        replay = TraceFileWorkload(path)
        assert replay.footprint_pages == 1000
        assert replay.num_batches == 6

        # Regenerate the original stream for comparison.
        original2 = SyntheticZipfWorkload(
            num_pages=1000, accesses_per_batch=500, seed=7
        )
        machine = Machine(
            MachineConfig(local_capacity_pages=100, cxl_capacity_pages=2000)
        )
        original2.setup(machine)
        machine2 = Machine(
            MachineConfig(local_capacity_pages=100, cxl_capacity_pages=2000)
        )
        replay.setup(machine2)
        src = original2.batches()
        for i, batch in enumerate(replay.batches()):
            expected = next(src)
            assert np.array_equal(batch.page_ids, expected.page_ids), i
            assert batch.num_ops == expected.num_ops
            assert batch.cpu_ns == expected.cpu_ns

    def test_replay_is_rewindable(self, saved_trace):
        path, __ = saved_trace
        replay = TraceFileWorkload(path)
        machine = Machine(
            MachineConfig(local_capacity_pages=100, cxl_capacity_pages=2000)
        )
        replay.setup(machine)
        first = [b.page_ids.copy() for b in replay.batches()]
        second = [b.page_ids.copy() for b in replay.batches()]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "x.npz", iter([]), 100)

    def test_runs_through_experiment_facade(self, saved_trace):
        path, __ = saved_trace
        config = ExperimentConfig(local_fraction=0.1, max_batches=None, seed=0)
        result = run_experiment(
            lambda: TraceFileWorkload(path), StaticNoMigration, config
        )
        assert result.total_accesses == 6 * 500
        assert result.workload_name.startswith("trace:")

    def test_footprint_validation(self, tmp_path):
        from repro.sampling.events import AccessBatch

        batch = AccessBatch(
            page_ids=np.array([500]), num_ops=1.0, cpu_ns=0.0
        )
        path = tmp_path / "bad.npz"
        save_trace(path, [batch], footprint_pages=100)
        with pytest.raises(ValueError):
            TraceFileWorkload(path)
