"""Tests for trace utilities and the synthetic Zipf workload."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.workloads.trace import RecordedTrace, SyntheticZipfWorkload


def build_machine(pages: int) -> Machine:
    return Machine(
        MachineConfig(
            local_capacity_pages=max(32, pages // 8),
            cxl_capacity_pages=pages * 2,
        )
    )


class TestSyntheticZipf:
    def test_batches(self):
        w = SyntheticZipfWorkload(num_pages=1000, accesses_per_batch=500, seed=0)
        m = build_machine(1000)
        w.setup(m)
        batch = next(iter(w.batches()))
        assert batch.num_accesses == 500
        assert batch.page_ids.max() < 1000

    def test_hottest_pages_oracle(self):
        w = SyntheticZipfWorkload(num_pages=1000, alpha=1.5, seed=1)
        m = build_machine(1000)
        w.setup(m)
        hot = set(w.hottest_pages(50).tolist())
        batch = next(iter(w.batches()))
        hit = np.fromiter((p in hot for p in batch.page_ids), dtype=bool)
        assert hit.mean() > 0.4  # top-5% pages dominate at alpha=1.5

    def test_use_before_setup_raises(self):
        w = SyntheticZipfWorkload(num_pages=100)
        with pytest.raises(RuntimeError):
            w.machine

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticZipfWorkload(num_pages=0)


class TestRecordedTrace:
    def test_replay_identical(self):
        inner = SyntheticZipfWorkload(num_pages=500, accesses_per_batch=100, seed=2)
        rec = RecordedTrace(inner, max_batches=5)
        m = build_machine(500)
        rec.setup(m)
        first = [b.page_ids.copy() for b in rec.batches()]
        second = [b.page_ids.copy() for b in rec.batches()]
        assert len(first) == 5
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_batches_before_setup_raises(self):
        rec = RecordedTrace(SyntheticZipfWorkload(num_pages=100), max_batches=2)
        with pytest.raises(RuntimeError):
            next(iter(rec.batches()))

    def test_validation(self):
        with pytest.raises(ValueError):
            RecordedTrace(SyntheticZipfWorkload(num_pages=100), max_batches=0)

    def test_footprint_delegates(self):
        inner = SyntheticZipfWorkload(num_pages=123)
        assert RecordedTrace(inner, max_batches=1).footprint_pages == 123
