"""Tests for the XGBoost-like workload generator."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.workloads.xgboost_like import XGBoostWorkload


def setup_workload(**kwargs) -> tuple[XGBoostWorkload, list]:
    w = XGBoostWorkload(num_rounds=3, **kwargs)
    m = Machine(
        MachineConfig(
            local_capacity_pages=max(64, w.footprint_pages // 16),
            cxl_capacity_pages=w.footprint_pages * 2,
        )
    )
    w.setup(m)
    return w, list(w.batches())


class TestStructure:
    def test_footprint(self):
        w = XGBoostWorkload(num_features=16, column_pages=8, hot_state_pages=32)
        assert w.matrix_pages == 128
        assert w.footprint_pages == 160

    def test_batches_per_round_is_tree_depth(self):
        w, batches = setup_workload(seed=0)
        assert len(batches) == 3 * w.tree_depth

    def test_round_labels(self):
        __, batches = setup_workload(seed=0)
        labels = {b.label for b in batches}
        assert labels == {"round0", "round1", "round2"}

    def test_ops_sum_to_one_per_round(self):
        w, batches = setup_workload(seed=0)
        round0 = [b for b in batches if b.label == "round0"]
        assert sum(b.num_ops for b in round0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            XGBoostWorkload(num_features=0)
        with pytest.raises(ValueError):
            XGBoostWorkload(hot_accesses_fraction=1.0)


class TestAccessPattern:
    def test_accesses_within_footprint(self):
        w, batches = setup_workload(seed=1)
        for b in batches:
            assert b.page_ids.min() >= 0
            assert b.page_ids.max() < w.footprint_pages

    def test_hot_region_share(self):
        w, batches = setup_workload(seed=2)
        hot_lo, hot_hi = w._hot_start, w._hot_start + w.hot_state_pages
        total, hot = 0, 0
        for b in batches:
            total += b.num_accesses
            hot += int(np.count_nonzero((b.page_ids >= hot_lo) & (b.page_ids < hot_hi)))
        assert hot / total == pytest.approx(w.hot_accesses_fraction, abs=0.05)

    def test_column_skew(self):
        """Popular columns are rescanned far more often."""
        w, batches = setup_workload(seed=3, num_features=64)
        counts = np.zeros(w.num_features, dtype=np.int64)
        for b in batches:
            in_matrix = b.page_ids[b.page_ids >= w._matrix_start]
            cols = (in_matrix - w._matrix_start) // w.column_pages
            np.add.at(counts, cols, 1)
        top_share = np.sort(counts)[::-1][:6].sum() / max(counts.sum(), 1)
        assert top_share > 0.4

    def test_scans_are_sequential_runs(self):
        w, batches = setup_workload(seed=4)
        # Each scanned page appears lines_per_page times.
        b = batches[0]
        matrix = b.page_ids[b.page_ids >= w._matrix_start]
        __, counts = np.unique(matrix, return_counts=True)
        assert counts.max() >= w.lines_per_page

    def test_deterministic(self):
        __, a = setup_workload(seed=5)
        __, b = setup_workload(seed=5)
        for x, y in zip(a, b):
            assert np.array_equal(np.sort(x.page_ids), np.sort(y.page_ids))

    def test_bytes_per_access_forwarded(self):
        __, batches = setup_workload(seed=6)
        assert batches[0].bytes_per_access == 256.0

    def test_describe(self):
        w, __ = setup_workload(seed=0)
        d = w.describe()
        assert d["num_rounds"] == 3
        assert d["name"] == "xgboost"
