"""Tests for the Zipfian sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.zipfian import ZipfianSampler


class TestBasics:
    def test_sample_range(self):
        z = ZipfianSampler(100, 1.0, seed=0)
        out = z.sample(10_000)
        assert out.min() >= 0
        assert out.max() < 100

    def test_deterministic(self):
        a = ZipfianSampler(100, 1.0, seed=5).sample(1000)
        b = ZipfianSampler(100, 1.0, seed=5).sample(1000)
        assert np.array_equal(a, b)

    def test_zero_size(self):
        z = ZipfianSampler(10, 1.0)
        assert z.sample(0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfianSampler(10, -0.5)
        with pytest.raises(ValueError):
            ZipfianSampler(10, 1.0).sample(-1)


class TestDistribution:
    def test_rank_frequencies_decay(self):
        z = ZipfianSampler(1000, 1.2, seed=1)
        ranks = z.sample_ranks(100_000)
        counts = np.bincount(ranks, minlength=1000)
        # Rank 0 much hotter than rank 100.
        assert counts[0] > counts[100] * 10

    def test_alpha_zero_is_uniform(self):
        z = ZipfianSampler(50, 0.0, seed=2)
        ranks = z.sample_ranks(100_000)
        counts = np.bincount(ranks, minlength=50)
        assert counts.min() > counts.max() * 0.8

    def test_paper_reference_point(self):
        """Paper Section II-B: Zipf(0.9) -> top 10% ~ 80% of accesses."""
        z = ZipfianSampler(100_000, 0.9)
        mass = z.mass_of_top_fraction(0.10)
        assert 0.55 < mass < 0.85

    def test_higher_alpha_more_skew(self):
        masses = [
            ZipfianSampler(10_000, a).mass_of_top_fraction(0.05)
            for a in (0.5, 1.0, 1.5)
        ]
        assert masses[0] < masses[1] < masses[2]

    def test_empirical_matches_cdf(self):
        z = ZipfianSampler(500, 1.1, seed=3)
        samples = z.sample(200_000)
        top = set(z.top_items(25).tolist())
        hits = np.fromiter((s in top for s in samples[:20_000]), dtype=bool)
        assert hits.mean() == pytest.approx(z.mass_of_top_fraction(0.05), abs=0.05)


class TestPermutation:
    def test_permuted_hot_items_scattered(self):
        z = ZipfianSampler(10_000, 1.3, seed=4, permute=True)
        hot = z.top_items(100)
        # Hot items should not be clustered at low ids.
        assert hot.max() > 5_000

    def test_unpermuted_rank_equals_item(self):
        z = ZipfianSampler(100, 1.0, permute=False)
        assert z.item_of_rank(0) == 0
        assert np.array_equal(z.top_items(3), [0, 1, 2])

    def test_mass_fraction_validation(self):
        z = ZipfianSampler(10, 1.0)
        with pytest.raises(ValueError):
            z.mass_of_top_fraction(1.5)
        assert z.mass_of_top_fraction(0.0) == 0.0
        assert z.mass_of_top_fraction(1.0) == pytest.approx(1.0)


@given(
    n=st.integers(2, 2_000),
    alpha=st.floats(0.0, 2.5),
    seed=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_property_samples_in_range(n, alpha, seed):
    z = ZipfianSampler(n, alpha, seed=seed)
    out = z.sample(500)
    assert out.min() >= 0
    assert out.max() < n


@given(n=st.integers(2, 500), alpha=st.floats(0.1, 2.0))
@settings(max_examples=40, deadline=None)
def test_property_cdf_monotone(n, alpha):
    z = ZipfianSampler(n, alpha)
    fractions = [0.1, 0.3, 0.6, 1.0]
    masses = [z.mass_of_top_fraction(f) for f in fractions]
    assert all(a <= b + 1e-12 for a, b in zip(masses, masses[1:]))
