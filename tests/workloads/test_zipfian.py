"""Tests for the Zipfian sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.zipfian import ZipfianSampler, build_alias_table


class TestBasics:
    def test_sample_range(self):
        z = ZipfianSampler(100, 1.0, seed=0)
        out = z.sample(10_000)
        assert out.min() >= 0
        assert out.max() < 100

    def test_deterministic(self):
        a = ZipfianSampler(100, 1.0, seed=5).sample(1000)
        b = ZipfianSampler(100, 1.0, seed=5).sample(1000)
        assert np.array_equal(a, b)

    def test_zero_size(self):
        z = ZipfianSampler(10, 1.0)
        assert z.sample(0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfianSampler(10, -0.5)
        with pytest.raises(ValueError):
            ZipfianSampler(10, 1.0).sample(-1)


class TestDistribution:
    def test_rank_frequencies_decay(self):
        z = ZipfianSampler(1000, 1.2, seed=1)
        ranks = z.sample_ranks(100_000)
        counts = np.bincount(ranks, minlength=1000)
        # Rank 0 much hotter than rank 100.
        assert counts[0] > counts[100] * 10

    def test_alpha_zero_is_uniform(self):
        z = ZipfianSampler(50, 0.0, seed=2)
        ranks = z.sample_ranks(100_000)
        counts = np.bincount(ranks, minlength=50)
        assert counts.min() > counts.max() * 0.8

    def test_paper_reference_point(self):
        """Paper Section II-B: Zipf(0.9) -> top 10% ~ 80% of accesses."""
        z = ZipfianSampler(100_000, 0.9)
        mass = z.mass_of_top_fraction(0.10)
        assert 0.55 < mass < 0.85

    def test_higher_alpha_more_skew(self):
        masses = [
            ZipfianSampler(10_000, a).mass_of_top_fraction(0.05)
            for a in (0.5, 1.0, 1.5)
        ]
        assert masses[0] < masses[1] < masses[2]

    def test_empirical_matches_cdf(self):
        z = ZipfianSampler(500, 1.1, seed=3)
        samples = z.sample(200_000)
        top = set(z.top_items(25).tolist())
        hits = np.fromiter((s in top for s in samples[:20_000]), dtype=bool)
        assert hits.mean() == pytest.approx(z.mass_of_top_fraction(0.05), abs=0.05)


class TestPermutation:
    def test_permuted_hot_items_scattered(self):
        z = ZipfianSampler(10_000, 1.3, seed=4, permute=True)
        hot = z.top_items(100)
        # Hot items should not be clustered at low ids.
        assert hot.max() > 5_000

    def test_unpermuted_rank_equals_item(self):
        z = ZipfianSampler(100, 1.0, permute=False)
        assert z.item_of_rank(0) == 0
        assert np.array_equal(z.top_items(3), [0, 1, 2])

    def test_mass_fraction_validation(self):
        z = ZipfianSampler(10, 1.0)
        with pytest.raises(ValueError):
            z.mass_of_top_fraction(1.5)
        assert z.mass_of_top_fraction(0.0) == 0.0
        assert z.mass_of_top_fraction(1.0) == pytest.approx(1.0)


class TestAliasMethod:
    """The O(1) alias sampler must encode the Zipf law exactly."""

    def test_alias_table_reconstructs_pmf_golden(self):
        """Golden check: the alias table is a deterministic function of
        the weights and reconstructs the analytic Zipf pmf to float
        round-off (no RNG involved in construction)."""
        for n, alpha in [(1, 0.0), (7, 1.1), (1_000, 0.9), (4_096, 2.0)]:
            weights = np.arange(1, n + 1, dtype=np.float64) ** -alpha
            accept, alias = build_alias_table(weights)
            pmf = accept.copy()
            np.add.at(pmf, alias, 1.0 - accept)
            pmf /= n
            np.testing.assert_allclose(
                pmf, weights / weights.sum(), rtol=0, atol=1e-12
            )

    def test_alias_table_shape_and_ranges(self):
        accept, alias = build_alias_table(np.array([3.0, 1.0, 1.0, 1.0]))
        assert accept.shape == alias.shape == (4,)
        assert np.all((accept >= 0.0) & (accept <= 1.0))
        assert np.all((alias >= 0) & (alias < 4))

    def test_build_alias_validation(self):
        with pytest.raises(ValueError):
            build_alias_table(np.zeros(0))
        with pytest.raises(ValueError):
            build_alias_table(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            build_alias_table(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            build_alias_table(np.array([1.0, np.inf]))

    def test_draws_match_pmf_chi_squared(self):
        n = 50
        z = ZipfianSampler(n, 1.0, seed=11, permute=False)
        draws = z.sample_ranks(400_000)
        observed = np.bincount(draws, minlength=n)
        weights = np.arange(1, n + 1, dtype=np.float64) ** -1.0
        expected = weights / weights.sum() * draws.size
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        # 49 degrees of freedom; 99.9th percentile is ~85.4.
        assert chi2 < 85.4, f"alias draws off the Zipf pmf: chi2={chi2:.1f}"

    def test_fixed_seed_determinism(self):
        a = ZipfianSampler(1_000, 1.1, seed=21)
        b = ZipfianSampler(1_000, 1.1, seed=21)
        assert np.array_equal(a.sample(5_000), b.sample(5_000))
        assert np.array_equal(a.sample_ranks(5_000), b.sample_ranks(5_000))


class TestReassignRanksVectorized:
    def _sequential_reference(self, n, a, b):
        ref = np.arange(n)
        for i, j in zip(a, b):
            ref[i], ref[j] = ref[j], ref[i]
        return ref

    class _ScriptedRng:
        """Feeds predetermined swap endpoints to reassign_ranks."""

        def __init__(self, draws):
            self._draws = list(draws)

        def integers(self, low, high, size):
            return self._draws.pop(0)

    def test_matches_sequential_swaps_with_duplicates(self):
        rng = np.random.default_rng(0)
        for trial in range(100):
            n = int(rng.integers(2, 30))
            m = int(rng.integers(1, 40))
            a = rng.integers(0, n, size=m)
            b = rng.integers(0, n, size=m)
            z = ZipfianSampler(n, 1.0, seed=0, permute=False)
            z._rng = self._ScriptedRng([a.copy(), b.copy()])
            assert z.reassign_ranks(m) == m
            np.testing.assert_array_equal(
                z._rank_to_item, self._sequential_reference(n, a, b)
            )

    def test_map_stays_permutation(self):
        z = ZipfianSampler(5_000, 1.0, seed=3)
        for _ in range(5):
            z.reassign_ranks(2_000)  # heavy duplicate pressure
            assert np.array_equal(
                np.sort(z._rank_to_item), np.arange(5_000)
            )

    def test_zero_and_negative_swaps(self):
        z = ZipfianSampler(10, 1.0, seed=0, permute=False)
        before = z._rank_to_item.copy()
        assert z.reassign_ranks(0) == 0
        assert z.reassign_ranks(-5) == 0
        assert np.array_equal(z._rank_to_item, before)

    def test_self_swap_is_noop(self):
        z = ZipfianSampler(4, 1.0, seed=0, permute=False)
        z._rng = self._ScriptedRng([np.array([2, 2]), np.array([2, 2])])
        z.reassign_ranks(2)
        assert np.array_equal(z._rank_to_item, np.arange(4))


@given(
    n=st.integers(2, 2_000),
    alpha=st.floats(0.0, 2.5),
    seed=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_property_samples_in_range(n, alpha, seed):
    z = ZipfianSampler(n, alpha, seed=seed)
    out = z.sample(500)
    assert out.min() >= 0
    assert out.max() < n


@given(n=st.integers(2, 500), alpha=st.floats(0.1, 2.0))
@settings(max_examples=40, deadline=None)
def test_property_cdf_monotone(n, alpha):
    z = ZipfianSampler(n, alpha)
    fractions = [0.1, 0.3, 0.6, 1.0]
    masses = [z.mass_of_top_fraction(f) for f in fractions]
    assert all(a <= b + 1e-12 for a, b in zip(masses, masses[1:]))
