"""Tests for the Workload base protocol."""

import pytest

from repro.workloads.spec import Workload


class _Stub(Workload):
    name = "stub"

    @property
    def footprint_pages(self) -> int:
        return 7

    def setup(self, machine) -> None:
        self._machine = machine

    def batches(self):
        return iter(())


class TestWorkloadBase:
    def test_machine_requires_setup(self):
        w = _Stub()
        with pytest.raises(RuntimeError):
            w.machine

    def test_machine_after_setup(self, tiny_machine):
        w = _Stub()
        w.setup(tiny_machine)
        assert w.machine is tiny_machine

    def test_describe_default(self):
        d = _Stub().describe()
        assert d == {"name": "stub", "footprint_pages": 7}

    def test_seed_stored(self):
        assert _Stub(seed=42).seed == 42
