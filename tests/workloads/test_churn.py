"""Tests for continuous key churn (paper Section VII-D)."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.workloads.cachelib import CacheLibWorkload, SOCIAL_PROFILE
from repro.workloads.zipfian import ZipfianSampler


class TestReassignRanks:
    def test_swaps_change_mapping(self):
        z = ZipfianSampler(1000, 1.2, seed=1)
        before = z.top_items(50).copy()
        z.reassign_ranks(500)
        after = z.top_items(50)
        assert not np.array_equal(before, after)

    def test_mapping_stays_a_permutation(self):
        z = ZipfianSampler(500, 1.0, seed=2)
        z.reassign_ranks(2_000)
        assert len(np.unique(z._rank_to_item)) == 500

    def test_distribution_shape_unchanged(self):
        z = ZipfianSampler(1000, 1.2, seed=3)
        mass_before = z.mass_of_top_fraction(0.1)
        z.reassign_ranks(5_000)
        assert z.mass_of_top_fraction(0.1) == pytest.approx(mass_before)

    def test_zero_swaps_noop(self):
        z = ZipfianSampler(100, 1.0, seed=4)
        before = z.top_items(10).copy()
        assert z.reassign_ranks(0) == 0
        assert np.array_equal(z.top_items(10), before)


class TestChurnyWorkload:
    def make_workload(self, churn: int) -> CacheLibWorkload:
        w = CacheLibWorkload(
            SOCIAL_PROFILE,
            slab_pages=4096,
            ops_per_batch=3_000,
            churn_swaps_per_batch=churn,
            seed=5,
        )
        m = Machine(
            MachineConfig(
                local_capacity_pages=256, cxl_capacity_pages=w.footprint_pages * 2
            )
        )
        w.setup(m)
        return w

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheLibWorkload(
                SOCIAL_PROFILE, slab_pages=4096, churn_swaps_per_batch=-1
            )

    def test_hot_pages_rotate_under_churn(self):
        """With churn on, early and late hot sets diverge."""
        w = self.make_workload(churn=200)
        gen = iter(w.batches())
        early = np.concatenate([next(gen).page_ids for __ in range(3)])
        for __ in range(40):
            next(gen)
        late = np.concatenate([next(gen).page_ids for __ in range(3)])

        def top_pages(accesses):
            counts = np.bincount(accesses, minlength=w.footprint_pages)
            return set(np.argsort(counts)[-100:].tolist())

        overlap = len(top_pages(early) & top_pages(late)) / 100
        assert overlap < 0.8

    def test_no_churn_hot_set_stable(self):
        w = self.make_workload(churn=0)
        gen = iter(w.batches())
        early = np.concatenate([next(gen).page_ids for __ in range(3)])
        for __ in range(40):
            next(gen)
        late = np.concatenate([next(gen).page_ids for __ in range(3)])

        def top_pages(accesses):
            counts = np.bincount(accesses, minlength=w.footprint_pages)
            return set(np.argsort(counts)[-100:].tolist())

        overlap = len(top_pages(early) & top_pages(late)) / 100
        assert overlap > 0.6
