"""Tests for the GAP kernel trace generators."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.workloads.gap import GapWorkload, _lines_of_ranges


def run_workload(kernel: str, scale: int = 10, trials: int = 1, seed: int = 0):
    w = GapWorkload(kernel, scale=scale, num_trials=trials, seed=seed)
    m = Machine(
        MachineConfig(
            local_capacity_pages=max(32, w.footprint_pages // 8),
            cxl_capacity_pages=w.footprint_pages * 2,
        )
    )
    w.setup(m)
    return w, list(w.batches())


class TestLinesOfRanges:
    def test_single_range(self):
        lines = _lines_of_ranges(np.array([0]), np.array([128]))
        assert np.array_equal(lines, [0, 1])

    def test_unaligned_range(self):
        lines = _lines_of_ranges(np.array([60]), np.array([10]))
        # Bytes 60..69 touch lines 0 and 1.
        assert np.array_equal(lines, [0, 1])

    def test_multiple_ranges(self):
        lines = _lines_of_ranges(np.array([0, 640]), np.array([64, 64]))
        assert np.array_equal(lines, [0, 10])

    def test_zero_length_skipped(self):
        lines = _lines_of_ranges(np.array([0, 100]), np.array([0, 1]))
        assert np.array_equal(lines, [1])

    def test_empty(self):
        assert _lines_of_ranges(np.array([]), np.array([])).size == 0


class TestWorkloadSetup:
    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            GapWorkload("pagerank")

    def test_footprint_covers_all_arrays(self):
        w = GapWorkload("bfs", scale=10, seed=0)
        assert w.footprint_pages == (
            w._indptr_arr.num_pages
            + w._indices_arr.num_pages
            + w._prop32.num_pages
            + w._prop64_a.num_pages
            + w._prop64_b.num_pages
        )

    def test_regions_disjoint(self):
        w, __ = run_workload("bfs")
        regions = w.machine.address_space.regions
        for a, b in zip(regions, regions[1:]):
            assert a.end_page == b.start_page


@pytest.mark.parametrize("kernel", ["bfs", "cc", "bc"])
class TestTraces:
    def test_accesses_within_footprint(self, kernel):
        w, batches = run_workload(kernel)
        assert len(batches) > 0
        for batch in batches:
            if batch.num_accesses:
                assert batch.page_ids.min() >= 0
                assert batch.page_ids.max() < w.footprint_pages

    def test_trace_is_substantial(self, kernel):
        __, batches = run_workload(kernel)
        total = sum(b.num_accesses for b in batches)
        assert total > 1_000  # kernels really traverse the graph

    def test_labels_carry_trials(self, kernel):
        __, batches = run_workload(kernel, trials=2, seed=1)
        labels = {b.label for b in batches}
        assert labels == {"trial0", "trial1"}

    def test_deterministic(self, kernel):
        __, a = run_workload(kernel, seed=3)
        __, b = run_workload(kernel, seed=3)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x.page_ids, y.page_ids)


class TestKernelSemantics:
    def test_bfs_reaches_large_component(self):
        w = GapWorkload("bfs", scale=10, num_trials=1, seed=0)
        m = Machine(
            MachineConfig(
                local_capacity_pages=w.footprint_pages,
                cxl_capacity_pages=64,
            )
        )
        w.setup(m)
        levels = list(w.batches())
        # A power-law graph's giant component spans several BFS levels.
        assert len(levels) >= 3

    def test_cc_converges(self):
        __, batches = run_workload("cc", scale=9, seed=1)
        # Label propagation converges well under the 64-iteration bound.
        assert len(batches) < 64

    def test_bc_has_forward_and_backward_phases(self):
        __, batches = run_workload("bc", scale=9, seed=2)
        # Backward pass adds batches beyond the BFS depth.
        bfs_only = run_workload("bfs", scale=9, seed=2)[1]
        assert len(batches) > len(bfs_only)

    def test_source_never_isolated(self):
        w = GapWorkload("bfs", scale=10, seed=0)
        degrees = w.graph.degrees()
        for __ in range(10):
            assert degrees[w._pick_source()] > 0

    def test_indices_and_property_traffic_both_present(self):
        """Sequential CSR reads (line-granular) plus random property
        accesses (element-granular) both appear; the random property
        checks dominate counts, like the visited-checks of real BFS."""
        w, batches = run_workload("bfs", scale=12, seed=0)
        lo = w._indices_arr.start_page
        hi = lo + w._indices_arr.num_pages
        total, in_indices = 0, 0
        for b in batches:
            total += b.num_accesses
            in_indices += int(
                np.count_nonzero((b.page_ids >= lo) & (b.page_ids < hi))
            )
        share = in_indices / max(total, 1)
        assert 0.02 < share < 0.9
