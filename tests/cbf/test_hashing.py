"""Tests for the Bloom-filter hashing primitives."""

import numpy as np
import pytest

from repro.cbf.hashing import derive_indices, fold_to_range, hash_pair, splitmix64


class TestSplitmix64:
    def test_deterministic(self):
        keys = np.arange(100, dtype=np.uint64)
        assert np.array_equal(splitmix64(keys), splitmix64(keys))

    def test_seed_changes_output(self):
        keys = np.arange(100, dtype=np.uint64)
        assert not np.array_equal(splitmix64(keys, seed=0), splitmix64(keys, seed=1))

    def test_distinct_keys_distinct_hashes(self):
        keys = np.arange(10_000, dtype=np.uint64)
        hashes = splitmix64(keys)
        assert len(np.unique(hashes)) == len(keys)

    def test_output_spreads_over_64_bits(self):
        keys = np.arange(1_000, dtype=np.uint64)
        hashes = splitmix64(keys)
        # Top bit set for roughly half the outputs.
        top_bits = (hashes >> np.uint64(63)).astype(int)
        assert 0.4 < top_bits.mean() < 0.6

    def test_avalanche_on_single_bit_flip(self):
        a = splitmix64(np.array([0b1000], dtype=np.uint64))[0]
        b = splitmix64(np.array([0b1001], dtype=np.uint64))[0]
        differing = bin(int(a) ^ int(b)).count("1")
        assert differing > 16  # good mixers flip ~32 bits


class TestHashPair:
    def test_h2_always_odd(self):
        keys = np.arange(1_000, dtype=np.uint64)
        __, h2 = hash_pair(keys)
        assert np.all(h2 % np.uint64(2) == 1)

    def test_h1_h2_independent(self):
        keys = np.arange(1_000, dtype=np.uint64)
        h1, h2 = hash_pair(keys)
        assert not np.array_equal(h1, h2)


class TestDeriveIndices:
    def test_shape(self):
        idx = derive_indices(np.arange(50, dtype=np.uint64), 3, 1024)
        assert idx.shape == (50, 3)

    def test_range(self):
        idx = derive_indices(np.arange(5_000, dtype=np.uint64), 4, 97)
        assert idx.min() >= 0
        assert idx.max() < 97

    def test_deterministic(self):
        keys = np.arange(100, dtype=np.uint64)
        assert np.array_equal(
            derive_indices(keys, 3, 1024), derive_indices(keys, 3, 1024)
        )

    def test_roughly_uniform(self):
        idx = derive_indices(np.arange(20_000, dtype=np.uint64), 3, 64)
        counts = np.bincount(idx.ravel(), minlength=64)
        expected = idx.size / 64
        assert counts.min() > expected * 0.8
        assert counts.max() < expected * 1.2

    def test_rejects_bad_params(self):
        keys = np.arange(3, dtype=np.uint64)
        with pytest.raises(ValueError):
            derive_indices(keys, 0, 10)
        with pytest.raises(ValueError):
            derive_indices(keys, 3, 0)

    def test_distinct_probes_for_power_of_two_tables(self):
        # With odd h2 and power-of-two size, all k probes differ.
        idx = derive_indices(np.arange(1_000, dtype=np.uint64), 3, 1024)
        for row in idx[:100]:
            assert len(set(row.tolist())) == 3


class TestFoldToRange:
    def test_range(self):
        hashes = splitmix64(np.arange(10_000, dtype=np.uint64))
        folded = fold_to_range(hashes, 37)
        assert folded.min() >= 0
        assert folded.max() < 37

    def test_uniformity(self):
        hashes = splitmix64(np.arange(50_000, dtype=np.uint64))
        folded = fold_to_range(hashes, 16)
        counts = np.bincount(folded, minlength=16)
        expected = len(hashes) / 16
        assert counts.min() > expected * 0.9
        assert counts.max() < expected * 1.1

    def test_upper_one_is_all_zero(self):
        hashes = splitmix64(np.arange(100, dtype=np.uint64))
        assert np.all(fold_to_range(hashes, 1) == 0)

    def test_rejects_bad_upper(self):
        with pytest.raises(ValueError):
            fold_to_range(np.zeros(1, dtype=np.uint64), 0)
