"""Tests for the exact frequency tracker (HeMem's hash table)."""

import numpy as np
import pytest

from repro.cbf.exact import ExactFrequencyTracker, HEMEM_BYTES_PER_PAGE


@pytest.fixture
def tracker() -> ExactFrequencyTracker:
    return ExactFrequencyTracker()


class TestCounting:
    def test_exactness(self, tracker):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 200, size=2_000).astype(np.uint64)
        tracker.increment(keys)
        uniq, truth = np.unique(keys, return_counts=True)
        assert np.array_equal(tracker.get(uniq), truth)

    def test_unseen_key_is_zero(self, tracker):
        assert tracker.get(999) == 0

    def test_scalar_and_array_get(self, tracker):
        tracker.increment(np.array([4, 4], dtype=np.uint64))
        assert tracker.get(4) == 2
        assert np.array_equal(tracker.get(np.array([4, 5], dtype=np.uint64)), [2, 0])

    def test_increase(self, tracker):
        out = tracker.increase(np.array([1, 2], dtype=np.uint64), np.array([10, 20]))
        assert np.array_equal(out, [10, 20])

    def test_max_count_cap(self):
        t = ExactFrequencyTracker(max_count=15)
        t.increase(np.array([1], dtype=np.uint64), 100)
        assert t.get(1) == 15


class TestAging:
    def test_halves_counts(self, tracker):
        tracker.increase(np.array([1], dtype=np.uint64), 9)
        tracker.age()
        assert tracker.get(1) == 4

    def test_drops_zeroed_entries(self, tracker):
        tracker.increment(np.array([1], dtype=np.uint64))
        tracker.age()
        assert tracker.get(1) == 0
        assert tracker.num_entries == 0

    def test_memory_shrinks_after_aging(self, tracker):
        tracker.increment(np.arange(100, dtype=np.uint64))
        before = tracker.nbytes
        tracker.age()  # all counts were 1 -> all dropped
        assert tracker.nbytes < before


class TestMemoryAccounting:
    def test_bytes_per_entry_default_is_hemem(self, tracker):
        tracker.increment(np.arange(10, dtype=np.uint64))
        assert tracker.nbytes == 10 * HEMEM_BYTES_PER_PAGE

    def test_paper_scale_overhead(self):
        """Paper Section VII-C: 267 GB of 4K pages -> ~11 GB of metadata."""
        pages_267gb = 267 * (1 << 30) // 4096
        nbytes = pages_267gb * HEMEM_BYTES_PER_PAGE
        assert 10 * (1 << 30) < nbytes < 12 * (1 << 30)

    def test_clear(self, tracker):
        tracker.increment(np.arange(5, dtype=np.uint64))
        tracker.clear()
        assert tracker.num_entries == 0
        assert tracker.nbytes == 0


class TestHistogram:
    def test_histogram_clamps(self, tracker):
        tracker.increase(np.array([1], dtype=np.uint64), 100)
        tracker.increment(np.array([2], dtype=np.uint64))
        hist = tracker.counter_histogram(max_value=15)
        assert hist[15] == 1
        assert hist[1] == 1
        assert hist.sum() == 2
