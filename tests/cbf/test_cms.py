"""Tests for the Count-Min Sketch variant."""

import numpy as np

from repro.cbf.cbf import CountingBloomFilter
from repro.cbf.cms import CountMinSketch


class TestCountMinSketch:
    def test_basic_counting(self):
        cms = CountMinSketch(num_counters=4096, num_hashes=3, bits=8, seed=1)
        cms.increase(np.array([7], dtype=np.uint64), 5)
        assert cms.get(7) == 5

    def test_never_undercounts(self):
        cms = CountMinSketch(num_counters=2048, num_hashes=3, bits=8, seed=2)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 400, 3000).astype(np.uint64)
        cms.increment(keys)
        uniq, truth = np.unique(keys, return_counts=True)
        assert np.all(cms.get(uniq) >= np.minimum(truth, cms.max_count))

    def test_overcounts_at_least_as_much_as_cbf(self):
        """Conservative update dominates CMS on accuracy: under the
        same load, CMS estimates are >= CBF estimates >= truth."""
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 800, 5000).astype(np.uint64)
        cbf = CountingBloomFilter(num_counters=1024, num_hashes=3, bits=16, seed=4)
        cms = CountMinSketch(num_counters=1024, num_hashes=3, bits=16, seed=4)
        for chunk in np.array_split(keys, 20):
            uniq, counts = np.unique(chunk, return_counts=True)
            cbf.increase(uniq, counts)
            cms.increase(uniq, counts)
        uniq = np.unique(keys)
        cbf_est = cbf.get(uniq)
        cms_est = cms.get(uniq)
        assert np.all(cms_est >= cbf_est)
        assert cms_est.sum() > cbf_est.sum()  # strictly worse somewhere

    def test_aging(self):
        cms = CountMinSketch(num_counters=512, num_hashes=3, bits=8)
        cms.increase(np.array([1], dtype=np.uint64), 8)
        cms.age()
        assert cms.get(1) == 4

    def test_empty(self):
        cms = CountMinSketch(num_counters=64)
        out = cms.increase(np.zeros(0, dtype=np.uint64), 1)
        assert out.size == 0

    def test_duplicates_accumulate(self):
        cms = CountMinSketch(num_counters=512, num_hashes=2, bits=8)
        cms.increment(np.array([3, 3, 3], dtype=np.uint64))
        assert cms.get(3) == 3
