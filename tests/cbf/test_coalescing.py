"""Tests for CBF increment coalescing (Section V-C(c))."""

import numpy as np
import pytest

from repro.cbf.cbf import CountingBloomFilter
from repro.cbf.coalescing import SampleCoalescer


@pytest.fixture
def setup():
    cbf = CountingBloomFilter(num_counters=8192, num_hashes=3, bits=8, seed=2)
    return cbf, SampleCoalescer(cbf)


class TestCoalescing:
    def test_counts_match_uncoalesced(self, setup):
        cbf, coalescer = setup
        samples = np.array([5, 5, 5, 9, 9, 11], dtype=np.uint64)
        uniq, freqs = coalescer.ingest(samples)
        assert np.array_equal(uniq, [5, 9, 11])
        assert np.array_equal(freqs, [3, 2, 1])
        assert cbf.get(5) == 3

    def test_reduction_factor_on_skewed_batch(self, setup):
        __, coalescer = setup
        # Zipf-ish batch: one page dominates.
        samples = np.concatenate(
            [np.full(900, 1), np.arange(2, 102)]
        ).astype(np.uint64)
        coalescer.ingest(samples)
        # 1000 samples -> 101 unique increments: ~10x reduction.
        assert coalescer.stats.reduction_factor > 4.0

    def test_reduction_factor_uniform_batch_is_one(self, setup):
        __, coalescer = setup
        coalescer.ingest(np.arange(1_000, dtype=np.uint64))
        assert coalescer.stats.reduction_factor == pytest.approx(1.0)

    def test_stats_accumulate_across_batches(self, setup):
        __, coalescer = setup
        coalescer.ingest(np.array([1, 1], dtype=np.uint64))
        coalescer.ingest(np.array([2, 2], dtype=np.uint64))
        assert coalescer.stats.samples_in == 4
        assert coalescer.stats.unique_increments_out == 2

    def test_empty_batch(self, setup):
        __, coalescer = setup
        uniq, freqs = coalescer.ingest(np.zeros(0, dtype=np.uint64))
        assert uniq.size == 0
        assert freqs.size == 0

    def test_coalesce_only_does_not_touch_cbf(self, setup):
        cbf, coalescer = setup
        uniq, counts = coalescer.coalesce_only(
            np.array([3, 3, 4], dtype=np.uint64)
        )
        assert np.array_equal(uniq, [3, 4])
        assert np.array_equal(counts, [2, 1])
        assert cbf.get(3) == 0

    def test_fewer_cbf_slot_accesses_than_per_sample(self):
        """The point of the optimization: ~4x fewer CBF update calls."""
        skewed = np.concatenate(
            [np.full(750, 1), np.full(150, 2), np.arange(3, 103)]
        ).astype(np.uint64)

        coalesced_cbf = CountingBloomFilter(8192, bits=8, seed=3)
        SampleCoalescer(coalesced_cbf).ingest(skewed)
        per_sample_cbf = CountingBloomFilter(8192, bits=8, seed=3)
        for s in skewed:
            per_sample_cbf.increment(int(s))

        assert (
            coalesced_cbf.stats.slot_accesses
            < per_sample_cbf.stats.slot_accesses / 4
        )
        # And the resulting counts agree.
        keys = np.array([1, 2, 50], dtype=np.uint64)
        assert np.array_equal(coalesced_cbf.get(keys), per_sample_cbf.get(keys))
