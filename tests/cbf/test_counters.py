"""Tests for the packed n-bit counter array."""

import numpy as np
import pytest

from repro.cbf.counters import PackedCounterArray


class TestConstruction:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8, 16])
    def test_supported_widths(self, bits):
        arr = PackedCounterArray(100, bits=bits)
        assert arr.max_value == (1 << bits) - 1
        assert np.all(arr.to_array() == 0)

    @pytest.mark.parametrize("bits", [0, 3, 5, 7, 12, 32])
    def test_unsupported_widths_rejected(self, bits):
        with pytest.raises(ValueError):
            PackedCounterArray(100, bits=bits)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PackedCounterArray(0)

    def test_packing_density_4bit(self):
        arr = PackedCounterArray(1000, bits=4)
        assert arr.nbytes == 500  # two counters per byte

    def test_packing_density_2bit(self):
        arr = PackedCounterArray(1000, bits=2)
        assert arr.nbytes == 250

    def test_packing_density_1bit(self):
        arr = PackedCounterArray(1024, bits=1)
        assert arr.nbytes == 128


class TestGetSet:
    def test_roundtrip(self):
        arr = PackedCounterArray(64, bits=4)
        idx = np.arange(64)
        vals = np.arange(64) % 16
        arr.set(idx, vals)
        assert np.array_equal(arr.get(idx), vals)

    def test_set_clamps_to_max(self):
        arr = PackedCounterArray(8, bits=4)
        arr.set(np.array([0]), np.array([100]))
        assert arr.get(np.array([0]))[0] == 15

    def test_set_clamps_negative_to_zero(self):
        arr = PackedCounterArray(8, bits=4)
        arr.set(np.array([0]), np.array([-5]))
        assert arr.get(np.array([0]))[0] == 0

    def test_adjacent_nibbles_independent(self):
        arr = PackedCounterArray(4, bits=4)
        arr.set(np.array([0]), np.array([15]))
        assert arr.get(np.array([1]))[0] == 0
        arr.set(np.array([1]), np.array([7]))
        assert arr.get(np.array([0]))[0] == 15

    def test_out_of_bounds_raises(self):
        arr = PackedCounterArray(8)
        with pytest.raises(IndexError):
            arr.get(np.array([8]))
        with pytest.raises(IndexError):
            arr.set(np.array([-1]), np.array([1]))

    def test_16bit_values(self):
        arr = PackedCounterArray(10, bits=16)
        arr.set(np.array([3]), np.array([40_000]))
        assert arr.get(np.array([3]))[0] == 40_000


class TestAddSaturating:
    def test_simple_add(self):
        arr = PackedCounterArray(8, bits=4)
        arr.add_saturating(np.array([2, 3]), np.array([5, 1]))
        assert arr.get(np.array([2]))[0] == 5
        assert arr.get(np.array([3]))[0] == 1

    def test_duplicates_accumulate(self):
        arr = PackedCounterArray(8, bits=4)
        arr.add_saturating(np.array([1, 1, 1]), np.array([2, 3, 4]))
        assert arr.get(np.array([1]))[0] == 9

    def test_saturation(self):
        arr = PackedCounterArray(8, bits=4)
        arr.add_saturating(np.array([0] * 20), np.ones(20, dtype=np.int64))
        assert arr.get(np.array([0]))[0] == 15

    def test_scalar_broadcast(self):
        arr = PackedCounterArray(8, bits=4)
        arr.add_saturating(np.array([0, 1, 2]), 3)
        assert np.array_equal(arr.get(np.array([0, 1, 2])), [3, 3, 3])


class TestMaximum:
    """Scatter-max: raise each counter to at least the target value."""

    @pytest.mark.parametrize("bits", [1, 2, 4, 8, 16])
    def test_matches_dense_reference(self, bits):
        rng = np.random.default_rng(bits)
        size = 97  # odd size exercises the partial last byte
        for __ in range(20):
            arr = PackedCounterArray(size, bits=bits)
            start = rng.integers(0, arr.max_value + 1, size=size)
            arr.set(np.arange(size), start)
            idx = rng.integers(0, size, size=60)
            vals = rng.integers(0, arr.max_value + 10, size=60)
            arr.maximum(idx, vals)
            dense = start.copy()
            np.maximum.at(dense, idx, np.minimum(vals, arr.max_value))
            np.testing.assert_array_equal(arr.to_array(), dense)

    def test_duplicates_keep_largest(self):
        arr = PackedCounterArray(8, bits=4)
        arr.maximum(np.array([3, 3, 3]), np.array([5, 9, 2]))
        assert arr.get(np.array([3]))[0] == 9

    def test_never_decreases(self):
        arr = PackedCounterArray(8, bits=4)
        arr.set(np.array([2]), np.array([12]))
        arr.maximum(np.array([2]), np.array([4]))
        assert arr.get(np.array([2]))[0] == 12

    def test_clamps_to_max(self):
        arr = PackedCounterArray(8, bits=2)
        arr.maximum(np.array([0]), np.array([100]))
        assert arr.get(np.array([0]))[0] == 3

    def test_adjacent_subbyte_counters_untouched(self):
        arr = PackedCounterArray(4, bits=4)
        arr.set(np.arange(4), np.array([1, 2, 3, 4]))
        arr.maximum(np.array([1]), np.array([15]))
        assert np.array_equal(arr.to_array(), [1, 15, 3, 4])

    def test_out_of_bounds_raises(self):
        arr = PackedCounterArray(8)
        with pytest.raises(IndexError):
            arr.maximum(np.array([8]), np.array([1]))

    def test_empty(self):
        arr = PackedCounterArray(8, bits=4)
        arr.maximum(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert np.all(arr.to_array() == 0)


class TestHalveAll:
    @pytest.mark.parametrize("bits", [2, 4, 8, 16])
    def test_halves_every_counter(self, bits):
        size = 64
        arr = PackedCounterArray(size, bits=bits)
        vals = np.arange(size) % (arr.max_value + 1)
        arr.set(np.arange(size), vals)
        arr.halve_all()
        assert np.array_equal(arr.to_array(), vals // 2)

    def test_no_cross_counter_leak_4bit(self):
        # High nibble 15 next to low nibble 0 must not leak a bit.
        arr = PackedCounterArray(2, bits=4)
        arr.set(np.array([1]), np.array([15]))  # high nibble of byte 0
        arr.halve_all()
        assert arr.get(np.array([0]))[0] == 0
        assert arr.get(np.array([1]))[0] == 7

    def test_no_cross_counter_leak_2bit(self):
        arr = PackedCounterArray(4, bits=2)
        arr.set(np.array([1, 3]), np.array([3, 3]))
        arr.halve_all()
        assert np.array_equal(arr.to_array(), [0, 1, 0, 1])

    def test_1bit_halving_zeroes(self):
        arr = PackedCounterArray(8, bits=1)
        arr.set(np.arange(8), np.ones(8, dtype=np.int64))
        arr.halve_all()
        assert np.all(arr.to_array() == 0)

    def test_repeated_halving_reaches_zero(self):
        arr = PackedCounterArray(8, bits=4)
        arr.fill(15)
        for __ in range(4):
            arr.halve_all()
        assert np.all(arr.to_array() == 0)


class TestFill:
    def test_fill(self):
        arr = PackedCounterArray(33, bits=4)
        arr.fill(9)
        assert np.all(arr.to_array() == 9)

    def test_len(self):
        assert len(PackedCounterArray(17)) == 17
