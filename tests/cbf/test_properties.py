"""Property-based tests (hypothesis) for the frequency trackers.

Invariants under test:

1. CBF never undercounts (conservative update), up to saturation.
2. GET is the min over the key's counters, so aging halves estimates
   within rounding.
3. Packed counters round-trip any valid value at any width.
4. Coalesced ingestion is equivalent to per-sample increments.
5. The sizing solver always meets its FPR target.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cbf.blocked import BlockedCountingBloomFilter
from repro.cbf.cbf import CountingBloomFilter
from repro.cbf.coalescing import SampleCoalescer
from repro.cbf.counters import PackedCounterArray
from repro.cbf.exact import ExactFrequencyTracker
from repro.cbf.sizing import counters_for_fpr, false_positive_rate

key_lists = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300
)


@given(keys=key_lists, seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_cbf_never_undercounts(keys, seed):
    cbf = CountingBloomFilter(num_counters=2048, num_hashes=3, bits=8, seed=seed)
    arr = np.asarray(keys, dtype=np.uint64)
    cbf.increment(arr)
    uniq, truth = np.unique(arr, return_counts=True)
    estimates = cbf.get(uniq)
    assert np.all(estimates >= np.minimum(truth, cbf.max_count))


@given(keys=key_lists, seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_blocked_cbf_never_undercounts(keys, seed):
    cbf = BlockedCountingBloomFilter(
        num_counters=2048, num_hashes=3, bits=8, seed=seed
    )
    arr = np.asarray(keys, dtype=np.uint64)
    cbf.increment(arr)
    uniq, truth = np.unique(arr, return_counts=True)
    assert np.all(cbf.get(uniq) >= np.minimum(truth, cbf.max_count))


@given(
    amount=st.integers(1, 255),
    seed=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_aging_halves_estimates(amount, seed):
    cbf = CountingBloomFilter(num_counters=4096, num_hashes=3, bits=8, seed=seed)
    cbf.increase(np.array([77], dtype=np.uint64), amount)
    before = cbf.get(77)
    cbf.age()
    assert cbf.get(77) == before // 2


@given(
    bits=st.sampled_from([1, 2, 4, 8, 16]),
    values=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_packed_counters_roundtrip(bits, values):
    arr = PackedCounterArray(len(values), bits=bits)
    idx = np.arange(len(values))
    vals = np.asarray(values, dtype=np.int64)
    arr.set(idx, vals)
    expected = np.clip(vals, 0, arr.max_value)
    assert np.array_equal(arr.get(idx), expected)


@given(
    bits=st.sampled_from([2, 4, 8, 16]),
    values=st.lists(st.integers(0, 15), min_size=2, max_size=64),
)
@settings(max_examples=60, deadline=None)
def test_halve_all_equals_elementwise_halving(bits, values):
    arr = PackedCounterArray(len(values), bits=bits)
    idx = np.arange(len(values))
    vals = np.minimum(np.asarray(values, dtype=np.int64), arr.max_value)
    arr.set(idx, vals)
    arr.halve_all()
    assert np.array_equal(arr.to_array(), vals // 2)


@given(keys=key_lists, seed=st.integers(0, 30))
@settings(max_examples=30, deadline=None)
def test_coalesced_bounded_by_per_sample(keys, seed):
    """Batched conservative update never undercounts the true totals
    and never exceeds the sequential per-sample estimate."""
    arr = np.asarray(keys, dtype=np.uint64)
    a = CountingBloomFilter(num_counters=4096, num_hashes=3, bits=8, seed=seed)
    b = CountingBloomFilter(num_counters=4096, num_hashes=3, bits=8, seed=seed)
    SampleCoalescer(a).ingest(arr)
    for key in arr:
        b.increment(int(key))
    uniq, truth = np.unique(arr, return_counts=True)
    coalesced = a.get(uniq)
    sequential = b.get(uniq)
    assert np.all(coalesced >= np.minimum(truth, a.max_count))
    assert np.all(coalesced <= sequential)


@given(keys=key_lists)
@settings(max_examples=40, deadline=None)
def test_exact_tracker_matches_numpy_counts(keys):
    arr = np.asarray(keys, dtype=np.uint64)
    tracker = ExactFrequencyTracker()
    tracker.increment(arr)
    uniq, truth = np.unique(arr, return_counts=True)
    assert np.array_equal(tracker.get(uniq), truth)


@given(
    num_keys=st.integers(10, 100_000),
    fpr_exp=st.integers(1, 6),
    k=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_sizing_meets_fpr_target(num_keys, fpr_exp, k):
    target = 10.0**-fpr_exp
    m = counters_for_fpr(num_keys, target, k)
    assert false_positive_rate(m, num_keys, k) <= target * 1.0001


@given(keys=key_lists, seed=st.integers(0, 20))
@settings(max_examples=30, deadline=None)
def test_cbf_get_idempotent(keys, seed):
    cbf = CountingBloomFilter(num_counters=2048, seed=seed)
    arr = np.asarray(keys, dtype=np.uint64)
    cbf.increment(arr)
    first = cbf.get(arr)
    second = cbf.get(arr)
    assert np.array_equal(first, second)
