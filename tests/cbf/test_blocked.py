"""Tests for the blocked counting Bloom filter (Section V-C(b))."""

import numpy as np
import pytest

from repro.cbf.blocked import BLOCK_BYTES, BlockedCountingBloomFilter
from repro.cbf.cbf import CountingBloomFilter


@pytest.fixture
def bcbf() -> BlockedCountingBloomFilter:
    return BlockedCountingBloomFilter(num_counters=4096, num_hashes=3, bits=4, seed=7)


class TestBlockStructure:
    def test_counters_per_block_4bit(self, bcbf):
        assert bcbf.counters_per_block == BLOCK_BYTES * 8 // 4 == 128

    def test_size_rounds_to_whole_blocks(self):
        b = BlockedCountingBloomFilter(num_counters=200, bits=4)
        assert b.num_counters % b.counters_per_block == 0
        assert b.num_counters >= 200

    def test_minimum_one_block(self):
        b = BlockedCountingBloomFilter(num_counters=1, bits=4)
        assert b.num_blocks >= 1

    def test_all_indices_within_one_block(self, bcbf):
        keys = np.arange(2_000, dtype=np.uint64)
        idx = bcbf._indices(keys)
        blocks = idx // bcbf.counters_per_block
        # Every key's k counters live in a single block.
        assert np.all(blocks.min(axis=1) == blocks.max(axis=1))

    def test_one_cache_line_per_access(self, bcbf):
        assert bcbf.cache_lines_per_access == 1

    def test_blocks_spread_across_filter(self, bcbf):
        keys = np.arange(10_000, dtype=np.uint64)
        idx = bcbf._indices(keys)
        blocks = np.unique(idx // bcbf.counters_per_block)
        assert len(blocks) > bcbf.num_blocks * 0.8


class TestCountingBehaviour:
    def test_basic_counting(self, bcbf):
        for __ in range(4):
            bcbf.increment(42)
        assert bcbf.get(42) == 4

    def test_never_undercounts(self, bcbf):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 300, size=2_000).astype(np.uint64)
        bcbf.increment(keys)
        uniq, true_counts = np.unique(keys, return_counts=True)
        estimates = bcbf.get(uniq)
        assert np.all(estimates >= np.minimum(true_counts, bcbf.max_count))

    def test_aging(self, bcbf):
        bcbf.increase(np.array([9], dtype=np.uint64), 8)
        bcbf.age()
        assert bcbf.get(9) == 4

    def test_accuracy_close_to_classic(self):
        """Paper: negligible accuracy loss vs the classic CBF."""
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 2_000, size=20_000).astype(np.uint64)
        classic = CountingBloomFilter(num_counters=32_768, num_hashes=3, bits=8)
        blocked = BlockedCountingBloomFilter(
            num_counters=32_768, num_hashes=3, bits=8
        )
        classic.increment(keys)
        blocked.increment(keys)
        uniq, truth = np.unique(keys, return_counts=True)
        truth = np.minimum(truth, 255)
        err_classic = np.abs(classic.get(uniq) - truth).mean()
        err_blocked = np.abs(blocked.get(uniq) - truth).mean()
        # Blocked loses a little uniformity; allow a modest gap.
        assert err_blocked <= err_classic + 0.5
