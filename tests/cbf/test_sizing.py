"""Tests for Bloom-filter sizing math."""

import math

import pytest

from repro.cbf.sizing import (
    cbf_bytes_for_fpr,
    counters_for_fpr,
    false_positive_rate,
    optimal_num_hashes,
)


class TestFalsePositiveRate:
    def test_known_value(self):
        # m = 10n, k = 7 is the textbook ~0.8% configuration.
        assert false_positive_rate(10_000, 1_000, 7) == pytest.approx(
            0.00819, rel=0.05
        )

    def test_zero_keys(self):
        assert false_positive_rate(100, 0, 3) == 0.0

    def test_monotone_in_size(self):
        n, k = 1_000, 3
        rates = [false_positive_rate(m, n, k) for m in (2_000, 8_000, 32_000)]
        assert rates[0] > rates[1] > rates[2]

    def test_monotone_in_keys(self):
        rates = [false_positive_rate(8_000, n, 3) for n in (100, 1_000, 4_000)]
        assert rates[0] < rates[1] < rates[2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            false_positive_rate(0, 10, 3)
        with pytest.raises(ValueError):
            false_positive_rate(10, 10, 0)


class TestOptimalNumHashes:
    def test_textbook_value(self):
        # m/n = 10 -> k* = 10 ln 2 = 6.93 -> 7.
        assert optimal_num_hashes(10_000, 1_000) == 7

    def test_at_least_one(self):
        assert optimal_num_hashes(10, 1_000) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            optimal_num_hashes(0, 5)


class TestCountersForFPR:
    def test_achieves_target(self):
        n, k, p = 5_000, 3, 1e-3
        m = counters_for_fpr(n, p, k)
        assert false_positive_rate(m, n, k) <= p

    def test_is_tight(self):
        n, k, p = 5_000, 3, 1e-3
        m = counters_for_fpr(n, p, k)
        # One fewer counter would miss the target (within rounding).
        assert false_positive_rate(int(m * 0.95), n, k) > p

    def test_paper_sizing_rule(self):
        """The paper's rule: CBF sized for all local-DRAM pages at 1e-3.

        16 GB of local DRAM = 4M pages; with 4-bit counters the filter
        should land in the tens of MB, consistent with the paper's
        32-128 MB sweet spot (Fig. 12).
        """
        local_pages = 16 * (1 << 30) // 4096
        nbytes = cbf_bytes_for_fpr(local_pages, 1e-3, 3)
        assert 16 * (1 << 20) < nbytes < 128 * (1 << 20)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            counters_for_fpr(0, 1e-3, 3)
        with pytest.raises(ValueError):
            counters_for_fpr(10, 1.5, 3)
        with pytest.raises(ValueError):
            counters_for_fpr(10, 1e-3, 0)

    def test_smaller_fpr_needs_more_counters(self):
        sizes = [counters_for_fpr(1_000, p, 3) for p in (1e-1, 1e-2, 1e-3)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_scales_linearly_with_keys(self):
        m1 = counters_for_fpr(1_000, 1e-3, 3)
        m2 = counters_for_fpr(2_000, 1e-3, 3)
        assert m2 == pytest.approx(2 * m1, rel=0.01)


class TestBytesForFPR:
    def test_bit_packing_factor(self):
        m = counters_for_fpr(1_000, 1e-2, 3)
        assert cbf_bytes_for_fpr(1_000, 1e-2, 3, bits=4) == math.ceil(m * 4 / 8)
        assert cbf_bytes_for_fpr(1_000, 1e-2, 3, bits=8) == m
