"""Tests for the counting Bloom filter."""

import numpy as np
import pytest

from repro.cbf.cbf import CountingBloomFilter


@pytest.fixture
def cbf() -> CountingBloomFilter:
    return CountingBloomFilter(num_counters=4096, num_hashes=3, bits=4, seed=7)


class TestBasics:
    def test_fresh_filter_reads_zero(self, cbf):
        assert cbf.get(123) == 0
        assert np.all(cbf.get(np.arange(100, dtype=np.uint64)) == 0)

    def test_increment_then_get(self, cbf):
        cbf.increment(42)
        assert cbf.get(42) == 1

    def test_repeat_increments_accumulate(self, cbf):
        for __ in range(5):
            cbf.increment(42)
        assert cbf.get(42) == 5

    def test_duplicates_in_one_call_count_separately(self, cbf):
        cbf.increment(np.array([9, 9, 9], dtype=np.uint64))
        assert cbf.get(9) == 3

    def test_never_undercounts(self, cbf):
        # The conservative-update CBF may overcount but never
        # undercount (before saturation/aging).
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 500, size=3_000).astype(np.uint64)
        cbf.increment(keys)
        uniq, true_counts = np.unique(keys, return_counts=True)
        estimates = cbf.get(uniq)
        capped_truth = np.minimum(true_counts, cbf.max_count)
        assert np.all(estimates >= capped_truth)

    def test_saturates_at_max_count(self, cbf):
        for __ in range(30):
            cbf.increment(7)
        assert cbf.get(7) == cbf.max_count == 15

    def test_increase_bulk(self, cbf):
        keys = np.array([1, 2, 3], dtype=np.uint64)
        out = cbf.increase(keys, np.array([4, 5, 6]))
        assert np.array_equal(out, [4, 5, 6])
        assert cbf.get(2) == 5

    def test_increase_equivalent_to_increments(self):
        a = CountingBloomFilter(1024, seed=3)
        b = CountingBloomFilter(1024, seed=3)
        for __ in range(4):
            a.increment(99)
        b.increase(np.array([99], dtype=np.uint64), 4)
        assert a.get(99) == b.get(99)

    def test_empty_increase(self, cbf):
        out = cbf.increase(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        assert out.size == 0


class TestAging:
    def test_age_halves_counts(self, cbf):
        cbf.increase(np.array([5], dtype=np.uint64), 10)
        cbf.age()
        assert cbf.get(5) == 5

    def test_age_drops_ones_to_zero(self, cbf):
        cbf.increment(5)
        cbf.age()
        assert cbf.get(5) == 0

    def test_auto_aging_interval(self):
        cbf = CountingBloomFilter(1024, aging_interval=10)
        cbf.increase(np.array([1], dtype=np.uint64), 10)
        # The 10th increment triggers aging: 10 // 2 = 5.
        assert cbf.get(1) == 5
        assert cbf.stats.agings == 1

    def test_invalid_aging_interval(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(64, aging_interval=0)


class TestCollisions:
    def test_small_filter_overcounts_under_pressure(self):
        # Saturate a tiny filter with *sequential* single-key inserts:
        # later keys see slots inflated by earlier colliders.
        cbf = CountingBloomFilter(num_counters=32, num_hashes=3, bits=8)
        for key in range(500):
            cbf.increment(key)
        estimates = cbf.get(np.arange(500, dtype=np.uint64))
        assert estimates.max() > 1  # collisions inflated someone

    def test_large_filter_is_accurate(self):
        cbf = CountingBloomFilter(num_counters=100_000, num_hashes=3, bits=8)
        keys = np.arange(1_000, dtype=np.uint64)
        for __ in range(3):
            cbf.increment(keys)
        estimates = cbf.get(keys)
        # At 1% load, nearly all estimates should be exact.
        assert np.mean(estimates == 3) > 0.99


class TestStatsAndIntrospection:
    def test_nbytes_matches_bit_packing(self):
        cbf = CountingBloomFilter(num_counters=1000, bits=4)
        assert cbf.nbytes == 500

    def test_stats_track_operations(self, cbf):
        cbf.increment(np.arange(10, dtype=np.uint64))
        cbf.get(np.arange(10, dtype=np.uint64))
        assert cbf.stats.increments == 10
        assert cbf.stats.gets == 10
        assert cbf.stats.slot_accesses > 0

    def test_counter_histogram_sums_to_size(self, cbf):
        cbf.increment(np.arange(100, dtype=np.uint64))
        hist = cbf.counter_histogram()
        assert hist.sum() == cbf.num_counters
        assert len(hist) == cbf.max_count + 1

    def test_clear(self, cbf):
        cbf.increment(np.arange(50, dtype=np.uint64))
        cbf.clear()
        assert np.all(cbf.get(np.arange(50, dtype=np.uint64)) == 0)

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(64, num_hashes=0)


class TestConservativeUpdate:
    def test_colliding_key_does_not_lower_counter(self):
        """A slot shared by a hot and a cold key keeps the hot count."""
        cbf = CountingBloomFilter(num_counters=8, num_hashes=2, bits=8, seed=1)
        cbf.increase(np.array([1], dtype=np.uint64), 10)
        before = cbf.get(1)
        cbf.increment(np.array([2], dtype=np.uint64))
        assert cbf.get(1) >= before

    def test_batch_with_shared_slots_keeps_max(self):
        # Two keys in one batch may share a slot; neither may undercount.
        cbf = CountingBloomFilter(num_counters=4, num_hashes=2, bits=8, seed=0)
        keys = np.array([1, 2], dtype=np.uint64)
        cbf.increase(keys, np.array([7, 3]))
        assert cbf.get(1) >= 7
        assert cbf.get(2) >= 3

    def test_increase_matches_dense_reference(self):
        """The scatter-max increase equals the textbook conservative
        update: each key's slots rise to min-slot + total, never drop."""
        rng = np.random.default_rng(12)
        for trial in range(30):
            cbf = CountingBloomFilter(
                num_counters=int(rng.integers(8, 64)),
                num_hashes=int(rng.integers(1, 5)),
                bits=int(rng.choice([2, 4, 8])),
                seed=trial,
            )
            # Pre-load some state.
            cbf.increase(
                rng.integers(0, 40, size=20).astype(np.uint64),
                rng.integers(1, 5, size=20),
            )
            keys = rng.integers(0, 40, size=10).astype(np.uint64)
            counts = rng.integers(1, 6, size=10)
            idx = cbf._indices(keys)
            dense = cbf._counters.to_array()
            # Reference: per-key target = min(slots) + count, clamped;
            # each slot only ever raised, duplicates keep the max.
            uniq, inverse = np.unique(keys, return_inverse=True)
            totals = np.bincount(inverse, weights=counts).astype(np.int64)
            mins = dense[idx].min(axis=1)
            per_key_totals = totals[inverse]
            targets = np.minimum(mins + per_key_totals, cbf.max_count)
            for row, target in zip(idx, targets):
                np.maximum.at(dense, row, target)
            cbf.increase(keys, counts)
            np.testing.assert_array_equal(cbf._counters.to_array(), dense)
