"""Edge-case tests for the CXL pool rebalancer."""

import pytest

from repro.pooling.pool import CXLPool


class TestRebalanceEdges:
    def test_no_capacity_anywhere(self):
        """Pressured host, but no unallocated pages and no slack:
        rebalance must not invent capacity."""
        pool = CXLPool(total_pages=200)
        pool.register_host("a", 100)
        pool.register_host("b", 100)
        pool.report_usage("a", 100)
        pool.report_usage("b", 95)  # not slack either
        deltas = pool.rebalance()
        assert pool.granted_total <= 200
        assert sum(deltas.values()) <= 0 or not deltas

    def test_donor_never_dips_below_margin(self):
        pool = CXLPool(total_pages=1000)
        pool.register_host("needy", 500)
        pool.register_host("donor", 500)
        pool.report_usage("needy", 500)
        pool.report_usage("donor", 400)
        pool.rebalance(pressure_margin_frac=0.05, transfer_quantum=500)
        donor = pool.share_of("donor")
        # Donor keeps its used pages plus the protective margin.
        assert donor.granted_pages >= donor.used_pages

    def test_multiple_pressured_hosts_share_remainder(self):
        pool = CXLPool(total_pages=1000)
        pool.register_host("a", 300)
        pool.register_host("b", 300)
        pool.report_usage("a", 300)
        pool.report_usage("b", 300)
        deltas = pool.rebalance(transfer_quantum=100)
        # Both draw from the 400 unallocated pages.
        assert deltas.get("a", 0) > 0
        assert deltas.get("b", 0) > 0
        assert pool.granted_total <= 1000

    def test_repeated_rebalances_converge(self):
        pool = CXLPool(total_pages=1000)
        pool.register_host("a", 400)
        pool.register_host("b", 600)
        pool.report_usage("a", 400)
        pool.report_usage("b", 50)
        for __ in range(50):
            pool.report_usage(
                "a", min(400, pool.share_of("a").granted_pages)
            )
            pool.report_usage("b", 50)
            pool.rebalance()
            assert pool.granted_total <= 1000
        # "a" ended with strictly more than it started with.
        assert pool.share_of("a").granted_pages > 400

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            CXLPool(0)

    def test_zero_grant_rejected(self):
        pool = CXLPool(10)
        with pytest.raises(ValueError):
            pool.register_host("a", 0)
